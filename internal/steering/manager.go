package steering

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"ricsa/internal/clock"
	"ricsa/internal/cm"
	"ricsa/internal/cost"
	"ricsa/internal/fcp"
	"ricsa/internal/grid"
	"ricsa/internal/netsim"
	"ricsa/internal/pipeline"
	"ricsa/internal/simengine"
	"ricsa/internal/telemetry"
	"ricsa/internal/viz"
)

// This file is the multi-session deployment service: SessionManager owns N
// concurrent *live* sessions — each a real simulation advancing in wall
// time with its own lifecycle goroutine — as wall-clock clients of one
// shared cm.Manager control loop: one measured network graph kept fresh by
// the background Prober, one memoized optimizer. Sessions re-consult the
// CM as conditions change; identical (graph, pipeline, endpoints) instances
// across sessions and across time are answered from the cache instead of
// re-running the dynamic program, and each session's frame pacing charges
// its installed mapping's predicted delay — the paper's semantics that the
// loop does not advance until the previous image is delivered.

// Manager errors.
var (
	// ErrSessionLimit is returned by Create when the manager is at its
	// -max-sessions capacity.
	ErrSessionLimit = errors.New("steering: session limit reached")
	// ErrNoSession is returned for operations on unknown or destroyed ids.
	ErrNoSession = errors.New("steering: no such session")
	// ErrShuttingDown is returned by Create after Shutdown began.
	ErrShuttingDown = errors.New("steering: manager is shutting down")
	// ErrOverloaded is returned by Create when admitting the session would
	// push the service past its frame-budget watermark even though slots
	// remain below -max-sessions. The web layer maps it to HTTP 503.
	ErrOverloaded = errors.New("steering: service overloaded")
	// ErrViewerEvicted is returned by a tracked Viewer's Wait/Poll after
	// the slow-consumer policy evicted it for falling more than
	// MaxViewerLag frames behind the live sequence.
	ErrViewerEvicted = errors.New("steering: viewer evicted (too far behind frame stream)")
)

// ManagerConfig tunes a SessionManager.
type ManagerConfig struct {
	// MaxSessions bounds concurrently live sessions (<= 0 selects 8).
	MaxSessions int
	// CacheCapacity bounds the shared optimizer cache
	// (<= 0 selects pipeline.DefaultCacheCapacity).
	CacheCapacity int
	// ReoptimizeEvery is the number of frames between a session's
	// consultations of the CM optimizer (<= 0 selects 8). Consultations
	// whose inputs are unchanged hit the shared cache.
	ReoptimizeEvery int
	// Seed drives the emulated testbed network the CM measures.
	Seed int64
	// ProbeInterval is the wall-clock cadence of the CM's background
	// Prober (<= 0 disables it; tests drive ProbeTick explicitly).
	ProbeInterval time.Duration
	// ProbeLinksPerTick is how many directed edges one prober tick
	// re-probes (<= 0 selects the cm default).
	ProbeLinksPerTick int
	// ProbeTolerance is the relative estimate drift that re-stamps the
	// graph (<= 0 selects the cm default).
	ProbeTolerance float64
	// AdaptTolerance and AdaptWindow parameterize session Adapters: a
	// frame whose re-predicted delay exceeds the installed VRT's by more
	// than the tolerance fraction counts as deviating, and AdaptWindow
	// consecutive deviations force a re-optimization (<= 0 select the cm
	// defaults).
	AdaptTolerance float64
	AdaptWindow    int
	// ProbeBudget bounds each probe transfer in virtual time (<= 0 selects
	// the cm default); scenario runs with dark links tighten it.
	ProbeBudget time.Duration
	// FrameBudget is the admission-control watermark: every admitted
	// session charges FrameCost/FramePeriod utilization units (the
	// fraction of one core its frame production nominally occupies), and
	// Create rejects with ErrOverloaded once the sum would exceed
	// FrameBudget. The charge is fixed at admission from configuration, so
	// the decision is deterministic and independent of probe state.
	// <= 0 disables the watermark (the hard MaxSessions cap still holds).
	FrameBudget float64
	// FrameCost is the nominal production cost of one frame used by the
	// FrameBudget watermark (<= 0 disables the watermark's charge).
	FrameCost time.Duration
	// MaxViewerLag is the slow-consumer eviction threshold: a tracked
	// Viewer (AttachViewer) more than MaxViewerLag frames behind the live
	// sequence is evicted at the next publish instead of the session
	// buffering for it without bound. <= 0 disables eviction. Presence-only
	// Attach viewers are exempt.
	MaxViewerLag int
	// Telemetry receives per-frame records and the service counters. nil
	// creates a counters-only collector (no sink), so the counters are
	// always live.
	Telemetry *telemetry.Collector
	// Clock paces every control loop of the service — the CM's background
	// Prober and each session's frame loop. nil selects the wall clock;
	// the scenario engine injects a clock.Virtual to run the whole live
	// stack deterministically.
	Clock clock.Clock
	// ComputePool is the shared frame-compute pool every session's sim
	// sweeps and block extraction run over, each through its own queue so
	// pool scheduling stays fair across sessions. nil selects the process
	// default pool (fcp.Default).
	ComputePool *fcp.Pool
	// TransportMode selects how the optimizer prices frame delivery over
	// lossy edges (DESIGN §13): the NACK retransmission path (the zero
	// value), fountain-FEC, or auto (cheaper of the two per edge). It is
	// stamped onto every published graph snapshot, so changing it reprices
	// the whole DP without re-measuring.
	TransportMode cost.TransportMode
	// MaxTier is the deepest rung of the viewer quality ladder (DESIGN §14)
	// the optimizer may degrade a delivery branch to, and the cap viewer
	// tier hints are clamped against. The zero value (TierFull) keeps the
	// historical uniform full-resolution behaviour.
	MaxTier cost.Tier
}

// SessionManager owns the live sessions of one RICSA service instance. The
// central-management state they share — the measured graph of the emulated
// six-site testbed, the per-edge estimates, and the memoized optimizer —
// lives in one cm.Manager. It is safe for concurrent use by HTTP handlers.
type SessionManager struct {
	cfg ManagerConfig
	cm  *cm.Manager
	clk clock.Clock

	// optFn/optMultiFn are the CM consultation entry points, split out as
	// fields so tests can inject optimizer failures; they default to the
	// shared cm.Manager's memoized optimizers.
	optFn      func(p *pipeline.Pipeline, srcName, dstName string) (*pipeline.VRT, error)
	optMultiFn func(p *pipeline.Pipeline, srcName string, dstNames []string, maxTier cost.Tier) (*pipeline.VRTree, error)

	tel  *telemetry.Collector
	pool *fcp.Pool

	mu       sync.Mutex
	sessions map[string]*ManagedSession
	nextID   uint64
	closed   bool
	// loadFrac is the admitted sessions' summed frame-budget utilization,
	// maintained by Create/Destroy/Shutdown for the admission watermark.
	loadFrac float64
}

// managerProbeSizes is the probe sweep the live service uses: two sizes
// keep a full six-site sweep fast while still separating bandwidth from
// fixed delay.
func managerProbeSizes() []int { return []int{256 << 10, 1 << 20} }

// NewSessionManager builds a manager: it constructs the emulated testbed,
// hands it to a new Central Manager (which actively measures every channel
// — the Section 4.3 probes), and starts the background Prober when a
// ProbeInterval is configured.
func NewSessionManager(cfg ManagerConfig) *SessionManager {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 8
	}
	if cfg.ReoptimizeEvery <= 0 {
		cfg.ReoptimizeEvery = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Wall()
	}
	if cfg.Telemetry == nil {
		cfg.Telemetry = telemetry.NewCollector(nil, 0)
	}
	pool := cfg.ComputePool
	if pool == nil {
		pool = fcp.Default()
	}
	m := &SessionManager{
		cfg:      cfg,
		clk:      cfg.Clock,
		tel:      cfg.Telemetry,
		pool:     pool,
		sessions: make(map[string]*ManagedSession),
	}
	m.cm = cm.New(managerTestbed(cfg.Seed), cm.Config{
		ProbeSizes:         managerProbeSizes(),
		ProbeInterval:      cfg.ProbeInterval,
		ProbeLinksPerTick:  cfg.ProbeLinksPerTick,
		Tolerance:          cfg.ProbeTolerance,
		DeviationTolerance: cfg.AdaptTolerance,
		DeviationWindow:    cfg.AdaptWindow,
		CacheCapacity:      cfg.CacheCapacity,
		ProbeBudget:        cfg.ProbeBudget,
		Clock:              cfg.Clock,
		Transport:          cfg.TransportMode,
	})
	m.optFn = m.cm.Optimize
	m.optMultiFn = m.cm.OptimizeMultiTiered
	m.cm.Start()
	return m
}

// managerTestbed builds the emulated six-site network the live service's
// CM measures: lossless and mildly cross-trafficked, so probing is cheap
// and deterministic per seed.
func managerTestbed(seed int64) *netsim.Network {
	tb := netsim.DefaultTestbed()
	tb.Loss = 0
	tb.CrossMean = 0.9
	return netsim.Testbed(seed, tb)
}

// CM exposes the shared control loop (status for the web control plane,
// the emulated network for tests that perturb link conditions).
func (m *SessionManager) CM() *cm.Manager { return m.cm }

// Remeasure simulates a network-condition change: the CM adopts a fresh
// testbed epoch and runs a gated full sweep. Estimates carry over by edge,
// so a remeasure that finds the same conditions keeps the graph's Rev —
// sessions' next consultations still hit the cache — while genuine drift
// re-stamps the graph and forces exactly one DP re-run per distinct
// instance.
func (m *SessionManager) Remeasure(seed int64) {
	// The adopted network is always the same six-site topology, so
	// AdoptNetwork cannot fail here.
	_ = m.cm.AdoptNetwork(managerTestbed(seed))
}

// Graph returns the CM's current measured graph (shared, read-only).
func (m *SessionManager) Graph() *pipeline.Graph { return m.cm.Graph() }

// CacheStats reports the shared optimizer cache counters.
func (m *SessionManager) CacheStats() pipeline.CacheStats { return m.cm.CacheStats() }

// Telemetry exposes the service's collector — counters for the web
// layer's /metrics exposition and the scenario engine's ground-truth
// reconciliation.
func (m *SessionManager) Telemetry() *telemetry.Collector { return m.tel }

// LoadFraction reports the admitted sessions' summed frame-budget
// utilization — the quantity the admission watermark compares against
// FrameBudget.
func (m *SessionManager) LoadFraction() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.loadFrac
}

// FrameBudget reports the configured admission watermark (0 = disabled).
func (m *SessionManager) FrameBudget() float64 { return m.cfg.FrameBudget }

// optimize is the CM entry point single-viewer sessions call: memoized DP
// over the current graph from the named data source to the named client.
func (m *SessionManager) optimize(p *pipeline.Pipeline, srcName, dstName string) (*pipeline.VRT, error) {
	return m.optFn(p, srcName, dstName)
}

// optimizeMulti is the fan-out entry point: one shared tree from the data
// source to every viewer host of a multi-viewer session, with the
// configured tier budget — the optimizer may degrade individual branches
// down the quality ladder when delivery gain beats the fidelity penalty.
func (m *SessionManager) optimizeMulti(p *pipeline.Pipeline, srcName string, dstNames []string) (*pipeline.VRTree, error) {
	return m.optMultiFn(p, srcName, dstNames, m.cfg.MaxTier)
}

// MaxTier reports the configured tier budget.
func (m *SessionManager) MaxTier() cost.Tier { return m.cfg.MaxTier }

// NodeNames returns the measured hosts a Request may name as endpoints.
func (m *SessionManager) NodeNames() []string { return m.cm.NodeNames() }

// Create starts a new live session for the request and returns it. The
// session's lifecycle goroutine runs until Destroy or Shutdown.
func (m *SessionManager) Create(req Request) (*ManagedSession, error) {
	return m.CreateTuned(req, 0, 0, 0)
}

// CreateTuned is Create with explicit pacing and frame geometry applied
// before the lifecycle goroutine starts (zero values keep the defaults:
// 200ms frames at 512x512).
func (m *SessionManager) CreateTuned(req Request, framePeriod time.Duration, width, height int) (*ManagedSession, error) {
	s, err := newManagedSession(m, req)
	if err != nil {
		return nil, err
	}
	if framePeriod > 0 {
		s.FramePeriod = framePeriod
	}
	if width > 0 {
		s.Width = width
	}
	if height > 0 {
		s.Height = height
	}
	// The session's watermark charge: the fraction of one core its frame
	// production nominally occupies, fixed here at admission so the
	// decision never depends on later probe or load state.
	var util float64
	if m.cfg.FrameBudget > 0 && m.cfg.FrameCost > 0 {
		util = m.cfg.FrameCost.Seconds() / s.FramePeriod.Seconds()
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil, ErrShuttingDown
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.tel.SessionsRejectedLimit.Add(1)
		m.mu.Unlock()
		return nil, fmt.Errorf("%w (%d live)", ErrSessionLimit, m.cfg.MaxSessions)
	}
	if util > 0 && m.loadFrac+util > m.cfg.FrameBudget+1e-9 {
		m.tel.SessionsRejectedOverload.Add(1)
		load := m.loadFrac
		m.mu.Unlock()
		return nil, fmt.Errorf("%w: load %.3f + %.3f exceeds frame budget %.3f",
			ErrOverloaded, load, util, m.cfg.FrameBudget)
	}
	m.loadFrac += util
	s.util = util
	m.tel.SessionsAdmitted.Add(1)
	m.nextID++
	s.ID = fmt.Sprintf("s%d", m.nextID)
	m.sessions[s.ID] = s
	m.mu.Unlock()
	go s.run()
	return s, nil
}

// Get returns the live session with the given id.
func (m *SessionManager) Get(id string) (*ManagedSession, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// List returns the live sessions ordered by id.
func (m *SessionManager) List() []*ManagedSession {
	m.mu.Lock()
	out := make([]*ManagedSession, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, s)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if len(out[i].ID) != len(out[j].ID) {
			return len(out[i].ID) < len(out[j].ID)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Len reports the number of live sessions.
func (m *SessionManager) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.sessions)
}

// Destroy stops the session's lifecycle goroutine, waits for it to exit,
// and frees its slot.
func (m *SessionManager) Destroy(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	delete(m.sessions, id)
	if ok {
		m.loadFrac -= s.util
		if m.loadFrac < 0 {
			m.loadFrac = 0
		}
	}
	m.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSession, id)
	}
	s.halt()
	m.tel.SessionsDestroyed.Add(1)
	return nil
}

// Shutdown gracefully stops every session and the background Prober,
// refusing new Creates. It returns when all lifecycle goroutines have
// exited or ctx ends.
func (m *SessionManager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	m.closed = true
	victims := make([]*ManagedSession, 0, len(m.sessions))
	for id, s := range m.sessions {
		victims = append(victims, s)
		delete(m.sessions, id)
	}
	m.loadFrac = 0
	m.mu.Unlock()
	m.tel.SessionsDestroyed.Add(uint64(len(victims)))

	m.cm.Stop()

	done := make(chan struct{})
	go func() {
		for _, s := range victims {
			s.halt()
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// ManagedSession is one live monitored simulation owned by a
// SessionManager: a wall-clock simulate→consult-CM→render→publish loop
// that any number of web viewers can attach to. It satisfies the webui
// FrameSource contract (WaitFrame/Steer/Status) structurally.
type ManagedSession struct {
	ID  string
	mgr *SessionManager
	sim *simengine.Sim

	// FramePeriod is the base pacing of the loop — the installed mapping's
	// predicted delivery delay is charged on top per frame (see period).
	// Width/Height size rendered frames. Fixed at creation (CreateTuned).
	FramePeriod time.Duration
	Width       int
	Height      int

	mu      sync.Mutex
	req     Request
	seq     uint64 // frames produced (monotone, rendered or not)
	png     []byte // last rendered frame
	pngSeq  uint64 // the frame seq png corresponds to
	renders int    // RenderDataset invocations (lazy rendering skips idle frames)
	// tierPNG/tierSeq publish the latest encoded frame per reduced tier
	// (DESIGN §14); index TierFull is unused — the full frame stays in png.
	// A tier is encoded only while demanded, by a tracked viewer at that
	// tier or a delivery branch the optimizer degraded to it, so the slots
	// can lag the full frame; viewers fall back to the full frame then.
	tierPNG [cost.NumTiers][]byte
	tierSeq [cost.NumTiers]uint64
	// tierDemand counts tracked viewers per negotiated tier.
	tierDemand [cost.NumTiers]int
	// deltaKey retains the delta tier's newest keyframe and the frame seq
	// it was published at. Region patches are keyframe-relative, so the
	// retained key plus the latest patch reconstructs the current frame: a
	// delta viewer joining mid-stream is served the key first, with no
	// forced re-key.
	deltaKey    []byte
	deltaKeySeq uint64
	// latest is the newest unrendered dataset snapshot (with the request it
	// was produced under), kept so a viewer arriving after idle frames can
	// have the current frame rendered on demand. lazyTarget is the frame
	// seq a WaitFrame caller is currently rendering (0 = none): on-demand
	// rendering is single-flight, so a poll burst against an idle session
	// pays one render, not one per waiter.
	latest     *grid.ScalarField
	latestReq  Request
	lazyTarget uint64
	notify     chan struct{}
	viewers    int
	// tracked holds the Viewers subject to the slow-consumer eviction
	// policy (AttachViewer); presence-only Attach viewers are counted in
	// viewers but not tracked.
	tracked map[*Viewer]struct{}
	// util is the session's frame-budget utilization charge, fixed at
	// admission; Destroy/Shutdown credit it back to the manager.
	util float64
	// lateNS is how far past its scheduled cadence the next frame will
	// start (the previous frame overran its period). Written by nextDelay
	// and read by produce on the lifecycle goroutine only.
	lateNS    int64
	vrt       *pipeline.VRT    // installed mapping (single-viewer mode)
	tree      *pipeline.VRTree // installed routing tree (multi-viewer mode)
	optErr    error
	renderErr error
	reopts    int    // successful CM consultations
	adapts    int    // Adapter-forced consultations among them
	sinceOpt  int    // frames since the last successful consultation
	pipeKey   uint64 // fingerprint of the pipeline last sent to the CM
	pipe      *pipeline.Pipeline
	// pipeGen counts cost-model invalidations (isovalue steers). A CM
	// consultation snapshots it and discards its result if an
	// invalidation landed while the optimizer ran unlocked, so a stale
	// pipeline can never be installed over a fresher reset.
	pipeGen uint64
	adapter *cm.Adapter
	// place/places cache the installed mapping's placement node names
	// (single-viewer path, or one per tree branch) so the per-frame monitor
	// re-pricing does not rebuild them from the VRT every frame.
	place  []string
	places [][]string

	// scratch is the producer-owned frame data plane: mesh arena,
	// framebuffer, z-buffer, projection buffer, and PNG encode buffer, all
	// reused across frames. Only produce touches it (lazy renders in
	// WaitFrame run concurrently with the producer, so they allocate their
	// own buffers); published PNG bytes are always copied out of it.
	scratch viz.FrameScratch
	// tierEnc/tierBuf are the producer-owned per-tier encoders and encode
	// buffers (downscale scratch, delta reference canvas, PNG buffers),
	// reused across frames like scratch; published bytes are copied out.
	tierEnc [cost.NumTiers]viz.TierEncoder
	tierBuf [cost.NumTiers]bytes.Buffer
	// fieldScratch is the producer-owned dataset snapshot buffer. Ownership
	// transfers to `latest` when an idle frame stashes the snapshot for
	// on-demand rendering, and is reclaimed when a snapshot is superseded
	// with no lazy render in flight.
	fieldScratch *grid.ScalarField
	// queue is the session's lane into the shared frame-compute pool; the
	// sim's sweeps and the ROI extraction both submit through it, so its
	// accumulated caller stall is the frame's pool-wait time. roi is the
	// producer-owned dirty-block mesh cache behind RenderDatasetROI.
	queue *fcp.Queue
	roi   viz.BlockMeshCache

	stop chan struct{}
	done chan struct{}
}

// newManagedSession validates the request — including its endpoints, which
// must name hosts of the CM's measured graph — and instantiates the
// simulator; the caller registers the session and starts its goroutine.
func newManagedSession(m *SessionManager, req Request) (*ManagedSession, error) {
	switch req.Method {
	case "isosurface", "raycast", "streamline", "":
	default:
		return nil, fmt.Errorf("steering: unknown method %q", req.Method)
	}
	g := m.cm.Graph()
	if g.NodeIndex(req.SourceNode) < 0 {
		return nil, fmt.Errorf("steering: unknown source node %q (measured hosts: %v)",
			req.SourceNode, m.cm.NodeNames())
	}
	for _, dst := range req.Destinations() {
		if g.NodeIndex(dst) < 0 {
			return nil, fmt.Errorf("steering: unknown client node %q (measured hosts: %v)",
				dst, m.cm.NodeNames())
		}
	}
	var sim *simengine.Sim
	switch req.Simulator {
	case "sod":
		sim = simengine.NewSod(req.NX, req.NY, req.NZ, simengine.DefaultSodParams())
	case "bowshock":
		sim = simengine.NewBowShock(req.NX, req.NY, req.NZ, simengine.DefaultBowShockParams())
	default:
		return nil, fmt.Errorf("steering: unknown simulator %q", req.Simulator)
	}
	if req.StepsPerFrame <= 0 {
		req.StepsPerFrame = 1
	}
	queue := m.pool.NewQueue()
	sim.SetQueue(queue)
	return &ManagedSession{
		mgr:         m,
		sim:         sim,
		req:         req,
		notify:      make(chan struct{}),
		tracked:     make(map[*Viewer]struct{}),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		FramePeriod: 200 * time.Millisecond,
		Width:       512,
		Height:      512,
		adapter:     m.cm.NewAdapter(),
		queue:       queue,
	}, nil
}

// run is the session's lifecycle goroutine. Pacing is re-derived per frame:
// the installed VRT's predicted end-to-end delay is charged on top of the
// base frame period, so a session whose mapping delivers slowly publishes
// slowly — the paper's "the simulation does not proceed until the image
// from the last time step is delivered", with the emulated delivery time
// standing in for physical transfer.
func (s *ManagedSession) run() {
	defer close(s.done)
	clk := s.mgr.clk
	start := clk.Now()
	s.produce()
	timer := clk.NewTimer(s.nextDelay(clk.Since(start)))
	defer timer.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-timer.C():
			start = clk.Now()
			s.produce()
			timer.Reset(s.nextDelay(clk.Since(start)))
		}
	}
}

// nextDelay converts the effective frame period into the timer delay for
// the next frame, discounting the wall time produce itself consumed — the
// loop's cadence is the period, not period plus sim/render time. When
// produce overran the whole period the next frame starts immediately and
// the overrun is remembered as that frame's telemetry queue wait.
func (s *ManagedSession) nextDelay(elapsed time.Duration) time.Duration {
	d := s.period() - elapsed
	if d < 0 {
		s.lateNS = int64(-d)
		return 0
	}
	s.lateNS = 0
	return d
}

// period is the effective frame period: the base pacing plus the installed
// mapping's predicted delivery delay — in multi-viewer mode the tree's
// slowest branch, since the loop must not advance before every viewer has
// the previous image.
func (s *ManagedSession) period() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.FramePeriod
	switch {
	case s.tree != nil && s.tree.Delay > 0:
		p += time.Duration(s.tree.Delay * float64(time.Second))
	case s.vrt != nil && s.vrt.Delay > 0:
		p += time.Duration(s.vrt.Delay * float64(time.Second))
	}
	return p
}

// halt stops the lifecycle goroutine and waits for it.
func (s *ManagedSession) halt() {
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	<-s.done
}

func (s *ManagedSession) snapshot(req Request) *grid.ScalarField {
	return s.snapshotInto(nil, req)
}

func (s *ManagedSession) snapshotInto(dst *grid.ScalarField, req Request) *grid.ScalarField {
	if req.Variable == "pressure" {
		return s.sim.PressureInto(dst)
	}
	return s.sim.DensityInto(dst)
}

// produce advances the simulation one frame, consults the CM when due (on
// schedule, or early when the Adapter reports the installed mapping has
// drifted), and publishes the frame. Rendering is lazy: with no attached
// viewer the render/PNG-encode step — the hot path at -max-sessions scale —
// is skipped, the sequence number still advances, and the dataset snapshot
// is kept so WaitFrame can render the current frame on demand.
//
//ricsa:noalloc
func (s *ManagedSession) produce() {
	produceStart := telemetry.StartStage()
	rec := telemetry.FrameRecord{QueueWaitNS: s.lateNS}

	s.mu.Lock()
	req := s.req
	due := s.pipe == nil || s.sinceOpt >= s.mgr.cfg.ReoptimizeEvery
	pipe, vrt, tree := s.pipe, s.vrt, s.tree
	// Take the producer's snapshot buffer (nil when the previous frame's
	// snapshot is stashed in latest and may still be read by a lazy render).
	field := s.fieldScratch
	s.fieldScratch = nil
	s.mu.Unlock()

	simStart := telemetry.StartStage()
	for i := 0; i < req.StepsPerFrame; i++ {
		s.sim.Step()
	}
	field = s.snapshotInto(field, req)
	rec.SimNS = simStart.ElapsedNS()

	if !due && pipe != nil && (vrt != nil || tree != nil) && s.monitor(pipe, vrt, tree) {
		due = true
	}
	if due {
		s.consultCM(field, req)
	}

	s.mu.Lock()
	wantRender := s.viewers > 0
	// Tier demand for this frame: tracked viewers' negotiated tiers plus
	// every reduced tier the installed tree's branches were degraded to.
	// The full frame is always encoded when rendering at all.
	var wantTier [cost.NumTiers]bool
	for t := 1; t < cost.NumTiers; t++ {
		wantTier[t] = s.tierDemand[t] > 0
	}
	if s.tree != nil {
		for i := range s.tree.Branches {
			if bt := s.tree.Branches[i].Tier; bt != cost.TierFull && int(bt) < cost.NumTiers {
				wantTier[bt] = true
			}
		}
	}
	s.mu.Unlock()

	var png []byte
	var tierOut [cost.NumTiers][]byte
	deltaKeyed := false
	var err error
	if wantRender {
		var img *viz.Image
		renderStart := telemetry.StartStage()
		img, err = RenderDatasetROI(&s.scratch, &s.roi, s.queue, field, req, s.Width, s.Height)
		rec.RenderNS = renderStart.ElapsedNS()
		rec.BlocksReused, rec.BlocksExtracted = s.roi.TakeStats()
		if err == nil {
			// Encode into the reusable scratch buffer, then copy the bytes
			// out: published frames must be immutable, so only the encode
			// buffer is pooled, never the slice viewers hold.
			encodeStart := telemetry.StartStage()
			s.scratch.Enc.Reset()
			if err = img.EncodePNG(&s.scratch.Enc); err == nil {
				png = append([]byte(nil), s.scratch.Enc.Bytes()...)
				// One extra encode per *distinct* demanded reduced tier,
				// into producer-owned reused encoders; a tier that fails to
				// encode is simply not published this frame and its viewers
				// fall back to the full frame.
				for t := cost.Tier(1); int(t) < cost.NumTiers; t++ {
					if !wantTier[t] {
						continue
					}
					buf := &s.tierBuf[t]
					var terr error
					switch t {
					case cost.TierHalf:
						terr = s.tierEnc[t].EncodeDownscaled(img, 2, buf)
					case cost.TierQuarter:
						terr = s.tierEnc[t].EncodeDownscaled(img, 4, buf)
					case cost.TierDelta:
						var kind viz.DeltaKind
						kind, terr = s.tierEnc[t].EncodeDelta(img, false, buf)
						deltaKeyed = terr == nil && kind == viz.DeltaKey
					}
					if terr == nil {
						tierOut[t] = append([]byte(nil), buf.Bytes()...)
					}
				}
			}
			rec.EncodeNS = encodeStart.ElapsedNS()
		}
	}

	published := false
	s.mu.Lock()
	s.sinceOpt++
	s.renderErr = err
	switch {
	case !wantRender:
		// Idle frame: advance the sequence and stash the snapshot for
		// on-demand rendering, but do no pixel work. If this supersedes a
		// stashed snapshot no lazy render holds, recycle its buffer.
		s.seq++
		if s.latest != nil && s.lazyTarget == 0 {
			s.fieldScratch = s.latest
		}
		s.latest = field
		s.latestReq = req
		published = true
		close(s.notify)
		s.notify = make(chan struct{})
	case err == nil:
		s.seq++
		s.png = png
		s.pngSeq = s.seq
		s.renders++
		for t := 1; t < cost.NumTiers; t++ {
			if tierOut[t] != nil {
				s.tierPNG[t] = tierOut[t]
				s.tierSeq[t] = s.seq
			}
		}
		if deltaKeyed {
			s.deltaKey = tierOut[cost.TierDelta]
			s.deltaKeySeq = s.seq
		}
		s.latest = nil
		// The render consumed the snapshot synchronously; reclaim it.
		s.fieldScratch = field
		published = true
		rec.Rendered = true
		close(s.notify)
		s.notify = make(chan struct{})
	default:
		// Render failed: the snapshot is unpublished, so reclaim it.
		s.fieldScratch = field
	}
	if published {
		rec.Session = s.ID
		rec.Seq = s.seq
		s.fillDeliveryLocked(&rec)
		s.evictSlowLocked()
	}
	s.mu.Unlock()

	if published {
		if rec.Rendered {
			s.mgr.tel.TierEncodes[cost.TierFull].Add(1)
			for t := 1; t < cost.NumTiers; t++ {
				if tierOut[t] != nil {
					s.mgr.tel.TierEncodes[t].Add(1)
				}
			}
		}
		rec.ProduceNS = produceStart.ElapsedNS()
		// The queue accumulated the producer's stall behind other sessions'
		// pool batches across this frame's sim sweeps and extraction.
		rec.PoolWaitNS = s.queue.TakeWait()
		s.mgr.tel.RecordFrame(&rec)
	}
}

// fillDeliveryLocked copies the installed mapping's per-branch predicted
// delivery delays into the frame record (the slowest overflow branch
// lands in the last slot when the tree fans out past MaxBranches).
func (s *ManagedSession) fillDeliveryLocked(rec *telemetry.FrameRecord) {
	switch {
	case s.tree != nil:
		for i := range s.tree.Branches {
			ns := int64(s.tree.Branches[i].Delay * float64(time.Second))
			if i < telemetry.MaxBranches {
				rec.Delivery[i] = ns
				rec.Branches = i + 1
			} else if ns > rec.Delivery[telemetry.MaxBranches-1] {
				rec.Delivery[telemetry.MaxBranches-1] = ns
			}
		}
	case s.vrt != nil:
		rec.Delivery[0] = int64(s.vrt.Delay * float64(time.Second))
		rec.Branches = 1
	}
}

// evictSlowLocked applies the slow-consumer policy at publish time: any
// tracked viewer more than MaxViewerLag frames behind the sequence just
// published is evicted — its Wait/Poll return ErrViewerEvicted and its
// fan-out slot frees — instead of the session buffering for it without
// bound. Parked waiters are woken by the publish's notify broadcast.
func (s *ManagedSession) evictSlowLocked() {
	maxLag := s.mgr.cfg.MaxViewerLag
	if maxLag <= 0 || len(s.tracked) == 0 {
		return
	}
	for v := range s.tracked {
		if s.seq-v.delivered > uint64(maxLag) {
			v.evicted = true
			delete(s.tracked, v)
			s.viewers--
			s.tierDemand[v.tier]--
			s.mgr.tel.ViewersEvicted.Add(1)
		}
	}
}

// monitor is the session's monitor→adapt step: it re-evaluates the
// installed placement under the CM's *current* graph (which the Prober
// keeps fresh) and feeds the result to the Adapter. In multi-viewer mode
// every branch of the tree is re-priced and the slowest governs, matching
// what period charges. A placement whose re-predicted delay deviates from
// its at-install prediction for AdaptWindow consecutive frames forces an
// early consultation.
func (s *ManagedSession) monitor(pipe *pipeline.Pipeline, vrt *pipeline.VRT, tree *pipeline.VRTree) bool {
	s.mu.Lock()
	src := s.req.SourceNode
	// Placements are cached at install time so this per-frame re-pricing
	// does not rebuild node-name slices from the VRT every frame.
	place, places := s.place, s.places
	s.mu.Unlock()
	var observed, predicted float64
	if tree != nil {
		predicted = tree.Delay
		for _, pl := range places {
			d, err := s.mgr.cm.PredictPlacement(pipe, src, pl)
			if err != nil {
				d = math.Inf(1)
			}
			if d > observed {
				observed = d
			}
		}
	} else {
		predicted = vrt.Delay
		var err error
		observed, err = s.mgr.cm.PredictPlacement(pipe, src, place)
		if err != nil {
			// The placement no longer evaluates (a topology change): treat
			// as an unbounded deviation so the window logic still applies.
			observed = math.Inf(1)
		}
	}
	if !s.adapter.Observe(observed, predicted) {
		return false
	}
	s.mu.Lock()
	s.adapts++
	s.mu.Unlock()
	return true
}

// consultCM rebuilds the session's pipeline model when its cost inputs
// changed (a new isovalue) and asks the CM for a mapping between the
// request's endpoints: a path to the single ClientNode, or a shared
// routing tree over ClientNodes in multi-viewer mode. Unchanged (graph,
// pipeline, endpoints) instances are answered from the shared cache. A
// failed consultation keeps the session past due so the next frame retries
// immediately, and does not count as a re-optimization.
func (s *ManagedSession) consultCM(field *grid.ScalarField, req Request) {
	s.mu.Lock()
	pipe := s.pipe
	gen := s.pipeGen
	s.mu.Unlock()

	if pipe == nil {
		st := AnalyzeDataset(field, req.Simulator, req.BlockEdge, req.Isovalue)
		pipe = BuildIsoPipeline(st)
	}
	var vrt *pipeline.VRT
	var tree *pipeline.VRTree
	var err error
	if len(req.ClientNodes) > 0 {
		tree, err = s.mgr.optimizeMulti(pipe, req.SourceNode, req.ClientNodes)
	} else {
		vrt, err = s.mgr.optimize(pipe, req.SourceNode, req.ClientNode)
	}

	s.mu.Lock()
	if s.pipeGen != gen {
		// A steer invalidated the cost model while the optimizer ran:
		// drop this result (leaving sinceOpt past due) so the next frame
		// re-analyzes under the fresh parameters instead of installing a
		// stale pipeline over the reset.
		s.mu.Unlock()
		return
	}
	s.pipe = pipe
	s.pipeKey = pipe.Fingerprint()
	s.optErr = err
	if err != nil {
		// Keep the prior mapping and stay past due: the next frame retries
		// instead of waiting out a full ReoptimizeEvery schedule, and the
		// failure is not a re-optimization.
		s.sinceOpt = s.mgr.cfg.ReoptimizeEvery
		s.mu.Unlock()
		return
	}
	s.vrt, s.tree = vrt, tree
	s.place, s.places = nil, nil
	if tree != nil {
		s.places = make([][]string, len(tree.Branches))
		for i := range tree.Branches {
			s.places[i] = tree.BranchPlacement(i)
		}
	} else {
		s.place = PlacementFromVRT(vrt)
	}
	s.reopts++
	s.sinceOpt = 0
	s.mu.Unlock()
	s.adapter.Reset()
}

// Attach registers a viewer and returns its detach function. The hub calls
// this once per watching client so Status can report fan-out.
func (s *ManagedSession) Attach() (detach func()) {
	s.mu.Lock()
	s.viewers++
	s.mu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			s.mu.Lock()
			s.viewers--
			s.mu.Unlock()
		})
	}
}

// WaitFrame blocks until a frame with sequence > since exists (or ctx
// ends). Any number of viewers may wait concurrently. If the newest frame
// was produced while no viewer was attached (lazy rendering skipped it),
// WaitFrame renders it on demand from the stashed dataset snapshot.
func (s *ManagedSession) WaitFrame(ctx context.Context, since uint64) (uint64, []byte, error) {
	return s.waitFrame(ctx, since, nil)
}

// waitFrame is the shared long-poll core. With a tracked viewer it also
// enforces the eviction contract — a parked waiter is woken by the
// publish broadcast of the frame whose eviction scan removed it and
// returns ErrViewerEvicted — and records frame delivery for the viewer's
// lag accounting.
func (s *ManagedSession) waitFrame(ctx context.Context, since uint64, v *Viewer) (uint64, []byte, error) {
	for {
		s.mu.Lock()
		if v != nil && v.evicted {
			s.mu.Unlock()
			return 0, nil, ErrViewerEvicted
		}
		// A delta viewer that has not seen the current keyframe lineage is
		// served the retained keyframe before anything else — region patches
		// are keyframe-relative, so the key plus the latest patch is a
		// complete reconstruction. The since guard keeps stateless long-poll
		// clients (one fresh Viewer per HTTP request) from being re-served a
		// key their cursor already covers.
		if v != nil && v.tier == cost.TierDelta && s.deltaKey != nil &&
			v.keySeq != s.deltaKeySeq && s.deltaKeySeq > since {
			v.keySeq = s.deltaKeySeq
			if s.deltaKeySeq > v.delivered {
				v.delivered = s.deltaKeySeq
			}
			frame := s.deltaKey
			s.mgr.tel.TierFramesSent[v.tier].Add(1)
			s.mgr.tel.TierBytesSent[v.tier].Add(uint64(len(frame)))
			s.mu.Unlock()
			return s.deltaKeySeq, frame, nil
		}
		// A reduced-tier viewer blocks until its own tier's frame is at
		// least as fresh as the full frame: the viewer's attach is itself
		// the demand, so the next produced frame encodes the tier. Unlike
		// the non-blocking Poll there is no full-frame fallback here — a
		// blocking wait can afford one frame period, and the reply then
		// always carries the negotiated representation.
		if v != nil && v.tier != cost.TierFull {
			if ts := s.tierSeq[v.tier]; ts > since && ts >= s.pngSeq && s.tierPNG[v.tier] != nil {
				frame := s.tierPNG[v.tier]
				if ts > v.delivered {
					v.delivered = ts
				}
				s.mgr.tel.TierFramesSent[v.tier].Add(1)
				s.mgr.tel.TierBytesSent[v.tier].Add(uint64(len(frame)))
				s.mu.Unlock()
				return ts, frame, nil
			}
		} else if s.pngSeq > since && s.png != nil {
			seq, png := s.pngSeq, s.png
			if v != nil && seq > v.delivered {
				v.delivered = seq
			}
			if v != nil {
				s.mgr.tel.TierFramesSent[cost.TierFull].Add(1)
				s.mgr.tel.TierBytesSent[cost.TierFull].Add(uint64(len(png)))
			}
			s.mu.Unlock()
			return seq, png, nil
		}
		if s.seq > since && s.latest != nil && s.lazyTarget != s.seq {
			// Lazy render: the loop produced frames while idle. Claim the
			// current frame (single-flight: concurrent waiters see the
			// claim and wait on notify instead of rendering redundantly)
			// and render outside the lock; a racing producer may publish a
			// newer frame meanwhile, in which case this result is simply
			// superseded.
			field, req := s.latest, s.latestReq
			target := s.seq
			s.lazyTarget = target
			w, h := s.Width, s.Height
			s.mu.Unlock()
			img, err := RenderDataset(field, req, w, h)
			var png []byte
			if err == nil {
				png, err = img.PNG()
			}
			s.mu.Lock()
			if s.lazyTarget == target {
				s.lazyTarget = 0
			}
			if err != nil {
				s.renderErr = err
				// Release the herd so another waiter may retry.
				close(s.notify)
				s.notify = make(chan struct{})
				s.mu.Unlock()
				return 0, nil, err
			}
			if target > s.pngSeq {
				s.png = png
				s.pngSeq = target
				s.renders++
				s.mgr.tel.TierEncodes[cost.TierFull].Add(1)
				if s.seq == target {
					s.latest = nil
				}
			}
			// Wake waiters blocked behind the single-flight claim.
			close(s.notify)
			s.notify = make(chan struct{})
			s.mu.Unlock()
			continue
		}
		ch := s.notify
		s.mu.Unlock()
		select {
		case <-ctx.Done():
			return 0, nil, ctx.Err()
		case <-s.stop:
			return 0, nil, fmt.Errorf("%w: session destroyed", ErrNoSession)
		case <-ch:
		}
	}
}

// Steer applies named steering parameters: physics keys go to the
// simulator at its next step boundary; view keys retarget the renderer. A
// changed isovalue invalidates the pipeline cost model, forcing a CM
// consultation before the next frame. Application is atomic: an unknown
// key rejects the whole request with nothing applied.
func (s *ManagedSession) Steer(params map[string]float64) error {
	for k := range params {
		switch k {
		case "left_pressure", "left_density", "right_pressure", "right_density",
			"gamma", "cfl", "wind_velocity", "wind_density",
			"isovalue", "yaw", "pitch", "zoom":
		default:
			return fmt.Errorf("steering: unknown steering parameter %q", k)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.sim.Params()
	steerSim := false
	for k, v := range params {
		switch k {
		case "left_pressure":
			p.LeftPressure, steerSim = v, true
		case "left_density":
			p.LeftDensity, steerSim = v, true
		case "right_pressure":
			p.RightPressure, steerSim = v, true
		case "right_density":
			p.RightDensity, steerSim = v, true
		case "gamma":
			p.Gamma, steerSim = v, true
		case "cfl":
			p.CFL, steerSim = v, true
		case "wind_velocity":
			p.WindVelocity, steerSim = v, true
		case "wind_density":
			p.WindDensity, steerSim = v, true
		case "isovalue":
			if s.req.Isovalue != float32(v) {
				s.req.Isovalue = float32(v)
				// Cost model changed: rebuild and re-optimize next frame.
				s.pipe = nil
				s.pipeKey = 0
				s.pipeGen++
			}
		case "yaw":
			s.req.Camera.Yaw = v
		case "pitch":
			s.req.Camera.Pitch = v
		case "zoom":
			s.req.Camera.Zoom = v
		}
	}
	if steerSim {
		s.sim.SetParams(p)
	}
	return nil
}

// Status reports session state for the GUI sidebar and the service's
// sessions listing.
func (s *ManagedSession) Status() map[string]any {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := s.sim.Params()
	st := map[string]any{
		"id":              s.ID,
		"simulator":       s.req.Simulator,
		"variable":        s.req.Variable,
		"method":          s.req.Method,
		"source_node":     s.req.SourceNode,
		"client_nodes":    s.req.Destinations(),
		"cycle":           s.sim.Cycle(),
		"sim_time":        s.sim.Time(),
		"frame_seq":       s.seq,
		"viewers":         s.viewers,
		"renders":         s.renders,
		"isovalue":        s.req.Isovalue,
		"left_pressure":   p.LeftPressure,
		"left_density":    p.LeftDensity,
		"reoptimizations": s.reopts,
		"adaptations":     s.adapts,
		"max_tier":        s.mgr.cfg.MaxTier.String(),
	}
	if s.tree != nil {
		st["vrt_path"] = s.tree.SharedPath()
		st["vrt_delay_s"] = s.tree.Delay
		st["tree_shared_delay_s"] = s.tree.SharedDelay
		branches := make([]map[string]any, len(s.tree.Branches))
		for i, b := range s.tree.Branches {
			branches[i] = map[string]any{
				"dst": b.Dst, "path": s.tree.BranchPath(i), "delay_s": b.Delay,
				"tier": b.Tier.String(),
			}
		}
		st["tree_branches"] = branches
	} else if s.vrt != nil {
		st["vrt_path"] = s.vrt.Path()
		st["vrt_delay_s"] = s.vrt.Delay
	}
	if s.optErr != nil {
		st["optimize_error"] = s.optErr.Error()
	}
	if s.renderErr != nil {
		st["render_error"] = s.renderErr.Error()
	}
	return st
}

// Request returns a copy of the session's current request.
func (s *ManagedSession) Request() Request {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.req
}

// VRT returns the session's current mapping (may be nil before the first
// CM consultation completes, and always nil in multi-viewer mode).
func (s *ManagedSession) VRT() *pipeline.VRT {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vrt.Clone()
}

// Tree returns the session's current routing tree (nil before the first CM
// consultation completes, and always nil in single-viewer mode).
func (s *ManagedSession) Tree() *pipeline.VRTree {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tree.Clone()
}

// Mapping returns the installed mapping's cost inputs for external
// re-pricing — the scenario engine's frame-delay-vs-prediction invariant
// re-evaluates placements under both the CM's estimate graph and the
// emulated network's ground truth. It reports the pipeline model, the
// source node, one placement per delivery branch (a single-viewer session
// has exactly one), and the at-install predicted delay. ok is false before
// the first successful consultation. The returned pipeline and placements
// are live references treated as immutable by all holders.
func (s *ManagedSession) Mapping() (pipe *pipeline.Pipeline, src string, placements [][]string, predicted float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pipe == nil {
		return nil, "", nil, 0, false
	}
	switch {
	case s.tree != nil:
		return s.pipe, s.req.SourceNode, s.places, s.tree.Delay, true
	case s.vrt != nil:
		return s.pipe, s.req.SourceNode, [][]string{s.place}, s.vrt.Delay, true
	}
	return nil, "", nil, 0, false
}

// Viewers reports the currently attached viewer count (tracked and
// presence-only).
func (s *ManagedSession) Viewers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.viewers
}

// Renders reports how many frames were actually rendered; with lazy
// rendering this lags the frame sequence whenever no viewer is attached.
func (s *ManagedSession) Renders() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.renders
}

// Reoptimizations reports how many times the session consulted the CM.
func (s *ManagedSession) Reoptimizations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reopts
}

// Adaptations reports how many consultations the Adapter forced early.
func (s *ManagedSession) Adaptations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.adapts
}
