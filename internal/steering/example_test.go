package steering_test

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ricsa/internal/steering"
)

// ExampleSessionManager walks the session API of the multi-session
// service: create a live session, steer its physics, watch the limit
// enforcement, and shut the manager down gracefully.
func ExampleSessionManager() {
	mgr := steering.NewSessionManager(steering.ManagerConfig{
		MaxSessions: 2,
		Seed:        42,
	})

	req := steering.DefaultRequest()
	req.NX, req.NY, req.NZ = 16, 8, 8

	s, err := mgr.CreateTuned(req, 5*time.Millisecond, 64, 64)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("created %s (%d live)\n", s.ID, mgr.Len())

	// Steering: physics keys reach the solver at its next step boundary.
	if err := s.Steer(map[string]float64{"left_pressure": 8}); err != nil {
		fmt.Println(err)
	}
	// Unknown keys are rejected.
	if err := s.Steer(map[string]float64{"warp_factor": 9}); err != nil {
		fmt.Println(err)
	}

	// The manager enforces its capacity.
	mgr.Create(req)
	if _, err := mgr.Create(req); errors.Is(err, steering.ErrSessionLimit) {
		fmt.Println("third session refused: at capacity")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	mgr.Shutdown(ctx)
	fmt.Printf("after shutdown: %d live\n", mgr.Len())
	// Output:
	// created s1 (1 live)
	// steering: unknown steering parameter "warp_factor"
	// third session refused: at capacity
	// after shutdown: 0 live
}
