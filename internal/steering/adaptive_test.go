package steering

import (
	"testing"

	"ricsa/internal/dataset"
	"ricsa/internal/netsim"
)

func datasetRage() dataset.Spec { return dataset.RageSpec.Scaled(8) }

// TestAdaptiveReconfigurationOnLinkDegradation reproduces the runtime
// behaviour of Section 5.3.2: when a link on the chosen loop collapses, the
// CM re-measures, recomputes the VRT, and subsequent frames recover.
func TestAdaptiveReconfigurationOnLinkDegradation(t *testing.T) {
	d := measuredTestbed(t, 21)
	req := DefaultRequest()
	req.NX, req.NY, req.NZ = 64, 32, 32 // large enough that paths matter
	req.StepsPerFrame = 1
	s, err := NewSession(d, netsim.ORNL, netsim.ORNL, netsim.LSU, netsim.GaTech, req)
	if err != nil {
		t.Fatal(err)
	}
	s.AdaptTolerance = 0.5

	// The toy simulation's dataset is small enough to ship straight to the
	// client; substitute the 64 MB archival pipeline so the mapping
	// actually exercises the fast GaTech->UT->ORNL path.
	st := AnalyzeSpec(datasetRage(), 4)
	st.RawBytes = 64 << 20
	s.Pipe = BuildIsoPipeline(st)
	vrt, err := d.Optimize(s.Pipe, s.DS, s.Client)
	if err != nil {
		t.Fatal(err)
	}
	s.VRT = vrt
	s.Placement = PlacementFromVRT(vrt)

	usesUT := func(placement []string) bool {
		for _, n := range placement {
			if n == netsim.UT {
				return true
			}
		}
		return false
	}
	if !usesUT(s.Placement) {
		t.Fatalf("heavy pipeline should route via UT, got %v", s.Placement)
	}

	if err := s.RunFrames(2, nil); err != nil {
		t.Fatal(err)
	}
	if s.Reconfigs != 0 {
		t.Fatalf("reconfigured on a healthy network (%d times)", s.Reconfigs)
	}
	healthy := s.Frames[len(s.Frames)-1].Elapsed

	// Collapse the GaTech->UT data path to 2% of its capacity.
	l := d.Net.FindLink(netsim.GaTech, netsim.UT)
	l.AB.SetBandwidth(l.AB.Config().Bandwidth * 0.02)
	l.BA.SetBandwidth(l.BA.Config().Bandwidth * 0.02)

	if err := s.RunFrames(3, nil); err != nil {
		t.Fatal(err)
	}
	if s.Reconfigs == 0 {
		t.Fatal("link collapse never triggered reconfiguration")
	}
	if usesUT(s.Placement) {
		t.Fatalf("new mapping still routes through the dead link: %v", s.Placement)
	}
	recovered := s.Frames[len(s.Frames)-1].Elapsed
	degraded := s.Frames[2].Elapsed // first frame after the collapse
	if recovered >= degraded {
		t.Fatalf("no recovery: degraded frame %v, post-reconfig frame %v", degraded, recovered)
	}
	_ = healthy
}

// TestAdaptiveDisabledByDefault guards the zero-value behaviour.
func TestAdaptiveDisabledByDefault(t *testing.T) {
	d := measuredTestbed(t, 22)
	req := DefaultRequest()
	req.NX, req.NY, req.NZ = 32, 16, 16
	req.StepsPerFrame = 1
	s, err := NewSession(d, netsim.ORNL, netsim.ORNL, netsim.LSU, netsim.GaTech, req)
	if err != nil {
		t.Fatal(err)
	}
	l := d.Net.FindLink(netsim.GaTech, netsim.UT)
	l.AB.SetBandwidth(l.AB.Config().Bandwidth * 0.02)
	if err := s.RunFrames(2, nil); err != nil {
		t.Fatal(err)
	}
	if s.Reconfigs != 0 {
		t.Fatal("reconfiguration ran despite AdaptTolerance == 0")
	}
}
