package simengine

import (
	"testing"

	"ricsa/internal/fcp"
)

// TestPooledSweepsBitIdenticalToInline pins the solver's pool determinism
// contract: sweeps fanned out over the shared frame-compute pool produce
// bit-for-bit the same state as the inline single-worker path, at any pool
// width. Pencils touch disjoint cells and each pencil's float sequence is
// slot-independent, so this must hold exactly, not approximately.
func TestPooledSweepsBitIdenticalToInline(t *testing.T) {
	for _, width := range []int{2, 3, 8} {
		pool := fcp.NewPool(width)

		inline := NewBowShock(24, 16, 12, DefaultBowShockParams())
		inline.SetWorkers(1)
		pooled := NewBowShock(24, 16, 12, DefaultBowShockParams())
		pooled.SetWorkers(0)
		pooled.SetQueue(pool.NewQueue())

		for step := 0; step < 10; step++ {
			dtA := inline.Step()
			dtB := pooled.Step()
			if dtA != dtB {
				t.Fatalf("width %d step %d: dt %v vs %v", width, step, dtA, dtB)
			}
		}
		a := inline.Density()
		b := pooled.Density()
		for i := range a.Data {
			if a.Data[i] != b.Data[i] {
				t.Fatalf("width %d: density[%d] differs: %v vs %v", width, i, a.Data[i], b.Data[i])
			}
		}
		pa := inline.Pressure()
		pb := pooled.Pressure()
		for i := range pa.Data {
			if pa.Data[i] != pb.Data[i] {
				t.Fatalf("width %d: pressure[%d] differs", width, i)
			}
		}
		pool.Close()
	}
}

// TestClosedPoolStepStillCompletes: a Sim whose queue's pool has been torn
// down must keep stepping (inline) rather than hang — the SetDefaultWorkers
// rebuild path depends on this degradation.
func TestClosedPoolStepStillCompletes(t *testing.T) {
	pool := fcp.NewPool(4)
	sim := NewSod(16, 8, 8, DefaultSodParams())
	sim.SetWorkers(0)
	sim.SetQueue(pool.NewQueue())
	sim.Step()
	pool.Close()
	for i := 0; i < 3; i++ {
		if dt := sim.Step(); dt <= 0 {
			t.Fatalf("step %d returned dt %v", i, dt)
		}
	}
}
