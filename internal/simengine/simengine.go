// Package simengine is the computation being monitored and steered: a
// finite-volume compressible Euler solver in the style of the Virginia
// Hydrodynamics (VH1) code the paper instruments (Fig. 7). The solver uses
// dimensional splitting — the sweepx/sweepy/sweepz structure of VH1's main
// loop — with MUSCL (minmod-limited) reconstruction and HLL fluxes, and
// parallelizes pencil updates across goroutine workers.
//
// Two canonical problems are provided: the Sod shock tube (the paper's GUI
// example) with an exact Riemann solution for verification, and a stellar
// wind bow shock (the paper's Fig. 6 animation) formed by supersonic inflow
// around a rigid spherical obstacle.
package simengine

import (
	"math"
	"runtime"
	"sync"

	"ricsa/internal/fcp"
)

// Params are the steerable physics and numerics parameters. The RICSA GUI
// exposes these as "computation control parameters"; updating them mid-run
// is the steering operation.
type Params struct {
	Gamma float64 // ratio of specific heats
	CFL   float64 // Courant number in (0, 1)

	// Sod initial conditions: left/right density and pressure across the
	// diaphragm. Steering the pressure ratio mid-run re-energizes the tube.
	LeftDensity   float64
	LeftPressure  float64
	RightDensity  float64
	RightPressure float64

	// Bow shock wind parameters.
	WindDensity  float64
	WindVelocity float64
	WindPressure float64
}

// DefaultSodParams returns the classical Sod setup.
func DefaultSodParams() Params {
	return Params{
		Gamma:         1.4,
		CFL:           0.4,
		LeftDensity:   1.0,
		LeftPressure:  1.0,
		RightDensity:  0.125,
		RightPressure: 0.1,
	}
}

// DefaultBowShockParams returns a Mach ~3 wind.
func DefaultBowShockParams() Params {
	return Params{
		Gamma:        1.4,
		CFL:          0.35,
		WindDensity:  1.0,
		WindVelocity: 3.0,
		WindPressure: 0.6,
	}
}

// Problem selects the initial/boundary condition family.
type Problem int

// Problem kinds.
const (
	ProblemSod Problem = iota
	ProblemBowShock
)

// Sim is a running simulation instance.
type Sim struct {
	Problem    Problem
	NX, NY, NZ int

	mu    sync.Mutex
	par   Params
	rho   []float64
	mx    []float64 // momentum components
	my    []float64
	mz    []float64
	en    []float64 // total energy density
	solid []bool    // rigid obstacle mask (bow shock)
	time  float64
	cycle int
	dx    float64
	nWork int
	// queue submits sweep batches to the shared frame-compute pool; lazily
	// attached to the process default pool unless a session injects its own
	// via SetQueue. task is the reusable batch descriptor.
	queue *fcp.Queue
	task  sweepTask
	// scratch caches per-slot pencil buffers, reused across sweeps and
	// steps so the steady-state solver loop performs no allocation.
	scratch []*sweepScratch
	// pending holds a steering update applied at the next step boundary.
	pending *Params
}

// NewSod builds a shock tube along x. ny and nz may be 1 for a pure 1-D
// run or larger for a 3-D tube.
func NewSod(nx, ny, nz int, par Params) *Sim {
	s := newSim(ProblemSod, nx, ny, nz, par)
	s.initSod()
	return s
}

// NewBowShock builds a wind tunnel with a rigid sphere obstacle.
func NewBowShock(nx, ny, nz int, par Params) *Sim {
	s := newSim(ProblemBowShock, nx, ny, nz, par)
	s.initBowShock()
	return s
}

func newSim(pr Problem, nx, ny, nz int, par Params) *Sim {
	if nx < 3 {
		nx = 3
	}
	if ny < 1 {
		ny = 1
	}
	if nz < 1 {
		nz = 1
	}
	n := nx * ny * nz
	return &Sim{
		Problem: pr,
		NX:      nx, NY: ny, NZ: nz,
		par:   par,
		rho:   make([]float64, n),
		mx:    make([]float64, n),
		my:    make([]float64, n),
		mz:    make([]float64, n),
		en:    make([]float64, n),
		solid: make([]bool, n),
		dx:    1.0 / float64(nx),
		nWork: runtime.GOMAXPROCS(0),
	}
}

func (s *Sim) idx(x, y, z int) int { return (z*s.NY+y)*s.NX + x }

func (s *Sim) initSod() {
	half := s.NX / 2
	g1 := s.par.Gamma - 1
	for z := 0; z < s.NZ; z++ {
		for y := 0; y < s.NY; y++ {
			for x := 0; x < s.NX; x++ {
				i := s.idx(x, y, z)
				if x < half {
					s.rho[i] = s.par.LeftDensity
					s.en[i] = s.par.LeftPressure / g1
				} else {
					s.rho[i] = s.par.RightDensity
					s.en[i] = s.par.RightPressure / g1
				}
			}
		}
	}
}

func (s *Sim) initBowShock() {
	g1 := s.par.Gamma - 1
	cx := float64(s.NX) * 0.35
	cy := float64(s.NY) / 2
	cz := float64(s.NZ) / 2
	r := 0.12 * float64(minI(s.NY, s.NX))
	if s.NZ > 1 {
		r = 0.12 * float64(minI(s.NZ, minI(s.NY, s.NX)))
	}
	for z := 0; z < s.NZ; z++ {
		for y := 0; y < s.NY; y++ {
			for x := 0; x < s.NX; x++ {
				i := s.idx(x, y, z)
				s.rho[i] = s.par.WindDensity
				s.mx[i] = s.par.WindDensity * s.par.WindVelocity
				kin := 0.5 * s.par.WindDensity * s.par.WindVelocity * s.par.WindVelocity
				s.en[i] = s.par.WindPressure/g1 + kin
				dz := 0.0
				if s.NZ > 1 {
					dz = float64(z) - cz
				}
				dxr, dyr := float64(x)-cx, float64(y)-cy
				if math.Sqrt(dxr*dxr+dyr*dyr+dz*dz) < r {
					s.solid[i] = true
					s.mx[i], s.my[i], s.mz[i] = 0, 0, 0
					s.en[i] = s.par.WindPressure / g1
				}
			}
		}
	}
}

// Params returns the current steerable parameters.
func (s *Sim) Params() Params {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.par
}

// SetParams schedules a steering update; it takes effect at the next step
// boundary, like VH1 handling a NewSimulationParameters message between
// cycles (Fig. 7).
func (s *Sim) SetParams(p Params) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := p
	s.pending = &cp
}

// Time returns the simulated physical time. Safe to call while another
// goroutine drives Step (the web front ends poll it for status).
func (s *Sim) Time() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.time
}

// Cycle returns the number of completed steps. Safe to call while another
// goroutine drives Step.
func (s *Sim) Cycle() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cycle
}

// SetWorkers selects the sweep execution mode. With exactly one worker,
// sweeps run inline with zero per-step goroutine spawns — the
// allocation-flat mode the frame-stage benchmarks measure. Any other value
// (including <= 0) runs sweeps over the shared frame-compute pool, whose
// width — not n — bounds the parallelism. Call it between Steps, not
// concurrently with one.
func (s *Sim) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	s.nWork = n
}

// SetQueue attaches the Sim to a specific frame-compute pool queue — one
// queue per session keeps pool scheduling fair across sessions. A nil queue
// reverts to a lazily created queue on the process default pool. Call it
// between Steps, not concurrently with one.
func (s *Sim) SetQueue(q *fcp.Queue) { s.queue = q }

// queueFor returns the Sim's pool queue, attaching to the default pool on
// first pooled sweep.
func (s *Sim) queueFor() *fcp.Queue {
	if s.queue == nil {
		s.queue = fcp.Default().NewQueue()
	}
	return s.queue
}

// Step advances one cycle (sweepx, sweepy, sweepz) and returns the dt used.
func (s *Sim) Step() float64 {
	s.mu.Lock()
	if s.pending != nil {
		s.applySteering(*s.pending)
		s.pending = nil
	}
	par := s.par
	s.mu.Unlock()

	dt := s.stableDt(par)
	s.sweep(0, dt, par)
	if s.NY > 1 {
		s.sweep(1, dt, par)
	}
	if s.NZ > 1 {
		s.sweep(2, dt, par)
	}
	s.mu.Lock()
	s.time += dt
	s.cycle++
	s.mu.Unlock()
	return dt
}

// applySteering maps parameter changes onto the running state. Changing the
// Sod pressures re-pressurizes the corresponding halves (a visible steering
// effect); changing gamma or CFL simply alters subsequent dynamics; changing
// the wind re-seeds the inflow boundary (applied in sweeps).
func (s *Sim) applySteering(p Params) {
	old := s.par
	s.par = p
	if s.Problem == ProblemSod &&
		(p.LeftPressure != old.LeftPressure || p.RightPressure != old.RightPressure ||
			p.LeftDensity != old.LeftDensity || p.RightDensity != old.RightDensity) {
		// Re-drive the tube: reset the left fifth to the new left state,
		// which launches a fresh shock into the evolved interior.
		g1 := p.Gamma - 1
		for z := 0; z < s.NZ; z++ {
			for y := 0; y < s.NY; y++ {
				for x := 0; x < s.NX/5; x++ {
					i := s.idx(x, y, z)
					s.rho[i] = p.LeftDensity
					s.mx[i], s.my[i], s.mz[i] = 0, 0, 0
					s.en[i] = p.LeftPressure / g1
				}
			}
		}
	}
}

// stableDt computes the CFL-limited timestep from the global maximum
// signal speed.
func (s *Sim) stableDt(par Params) float64 {
	maxSpeed := 1e-12
	g := par.Gamma
	for i := range s.rho {
		if s.solid[i] {
			continue
		}
		r := s.rho[i]
		if r <= 0 {
			continue
		}
		u := s.mx[i] / r
		v := s.my[i] / r
		w := s.mz[i] / r
		kin := 0.5 * r * (u*u + v*v + w*w)
		p := (g - 1) * (s.en[i] - kin)
		if p < 1e-12 {
			p = 1e-12
		}
		c := math.Sqrt(g * p / r)
		sp := math.Max(math.Abs(u), math.Max(math.Abs(v), math.Abs(w))) + c
		if sp > maxSpeed {
			maxSpeed = sp
		}
	}
	return par.CFL * s.dx / maxSpeed
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
