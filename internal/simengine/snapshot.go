package simengine

import "ricsa/internal/grid"

// Density snapshots the density field as a ScalarField for the
// visualization pipeline (the dataset "periodically cached" by the data
// source node in Section 2).
func (s *Sim) Density() *grid.ScalarField { return s.DensityInto(nil) }

// DensityInto is Density writing into dst, reusing its storage when the
// dimensions match; a nil (or mismatched) dst allocates. Returns the field
// written, so steady-state frame loops can snapshot without allocating.
func (s *Sim) DensityInto(dst *grid.ScalarField) *grid.ScalarField {
	f := s.reuseField(dst)
	for i, v := range s.rho {
		f.Data[i] = float32(v)
	}
	return f
}

// reuseField returns dst when it matches the sim's dimensions, else a fresh
// field.
func (s *Sim) reuseField(dst *grid.ScalarField) *grid.ScalarField {
	if dst != nil && dst.NX == s.NX && dst.NY == s.NY && dst.NZ == s.NZ {
		return dst
	}
	return grid.NewScalarField(s.NX, s.NY, s.NZ)
}

// Pressure snapshots the pressure field (the paper's Fig. 6 shows "the
// pressure animation of stellar wind bowshock").
func (s *Sim) Pressure() *grid.ScalarField { return s.PressureInto(nil) }

// PressureInto is Pressure writing into dst under the same reuse contract as
// DensityInto.
func (s *Sim) PressureInto(dst *grid.ScalarField) *grid.ScalarField {
	f := s.reuseField(dst)
	g1 := s.Params().Gamma - 1
	for i := range s.rho {
		r := s.rho[i]
		if r < 1e-12 {
			r = 1e-12
		}
		u, v, w := s.mx[i]/r, s.my[i]/r, s.mz[i]/r
		kin := 0.5 * r * (u*u + v*v + w*w)
		p := g1 * (s.en[i] - kin)
		if p < 0 {
			p = 0
		}
		f.Data[i] = float32(p)
	}
	return f
}

// Velocity snapshots the velocity field for streamline visualization.
func (s *Sim) Velocity() *grid.VectorField {
	vf := grid.NewVectorField(s.NX, s.NY, s.NZ)
	for i := range s.rho {
		r := s.rho[i]
		if r < 1e-12 {
			r = 1e-12
		}
		vf.U[i] = float32(s.mx[i] / r)
		vf.V[i] = float32(s.my[i] / r)
		vf.W[i] = float32(s.mz[i] / r)
	}
	return vf
}

// TotalMass integrates density over the domain (cell volume dx^3), a
// conservation diagnostic for tests.
func (s *Sim) TotalMass() float64 {
	var sum float64
	for i, v := range s.rho {
		if !s.solid[i] {
			sum += v
		}
	}
	return sum * s.dx * s.dx * s.dx
}

// DensityProfile returns the density along the x axis at the pencil
// (y, z) — the 1-D curve the Sod verification compares against the exact
// Riemann solution.
func (s *Sim) DensityProfile(y, z int) []float64 {
	out := make([]float64, s.NX)
	for x := 0; x < s.NX; x++ {
		out[x] = s.rho[s.idx(x, y, z)]
	}
	return out
}
