package simengine

import (
	"math"
	"testing"
)

func runSodTo(t *testing.T, s *Sim, tEnd float64) {
	t.Helper()
	for s.Time() < tEnd {
		dt := s.Step()
		if dt <= 0 || math.IsNaN(dt) {
			t.Fatalf("bad dt %v at cycle %d", dt, s.Cycle())
		}
		if s.Cycle() > 100000 {
			t.Fatal("runaway step count")
		}
	}
}

func TestSodMatchesExactRiemann(t *testing.T) {
	par := DefaultSodParams()
	s := NewSod(400, 1, 1, par)
	tEnd := 0.2
	runSodTo(t, s, tEnd)

	prof := s.DensityProfile(0, 0)
	// Compare at interior points away from the initial transient noise.
	var l1, ref float64
	for x := 0; x < s.NX; x++ {
		pos := (float64(x) + 0.5) / float64(s.NX)
		xi := (pos - 0.5) / s.Time()
		exact, _, _ := SodExact(xi, par)
		l1 += math.Abs(prof[x] - exact)
		ref += exact
	}
	rel := l1 / ref
	if rel > 0.03 {
		t.Fatalf("Sod L1 density error %.3f%%, want < 3%%", rel*100)
	}
}

func TestSodExactStarRegionKnownValues(t *testing.T) {
	// Canonical Sod: p* = 0.30313, u* = 0.92745 (Toro, Table 4.2).
	par := DefaultSodParams()
	g := par.Gamma
	cL := math.Sqrt(g * par.LeftPressure / par.LeftDensity)
	cR := math.Sqrt(g * par.RightPressure / par.RightDensity)
	pStar, uStar := starRegion(g, par.LeftDensity, 0, par.LeftPressure, cL,
		par.RightDensity, 0, par.RightPressure, cR)
	if math.Abs(pStar-0.30313) > 5e-4 {
		t.Fatalf("p* = %.5f, want 0.30313", pStar)
	}
	if math.Abs(uStar-0.92745) > 5e-4 {
		t.Fatalf("u* = %.5f, want 0.92745", uStar)
	}
}

func TestSodConservesMassWithOutflowBeforeWavesExit(t *testing.T) {
	s := NewSod(200, 1, 1, DefaultSodParams())
	m0 := s.TotalMass()
	runSodTo(t, s, 0.1) // waves still inside the tube
	m1 := s.TotalMass()
	if math.Abs(m1-m0)/m0 > 1e-6 {
		t.Fatalf("mass drifted %.2e before waves reached boundaries", (m1-m0)/m0)
	}
}

func TestSod3DAgreesWith1D(t *testing.T) {
	par := DefaultSodParams()
	s1 := NewSod(128, 1, 1, par)
	s3 := NewSod(128, 8, 8, par)
	runSodTo(t, s1, 0.1)
	runSodTo(t, s3, 0.1)
	// Pick the 3-D center pencil; a planar problem must stay planar.
	p1 := s1.DensityProfile(0, 0)
	p3 := s3.DensityProfile(4, 4)
	// Times may differ slightly; compare at matching similarity positions
	// loosely via max abs difference.
	var maxd float64
	for x := range p1 {
		if d := math.Abs(p1[x] - p3[x]); d > maxd {
			maxd = d
		}
	}
	if maxd > 0.05 {
		t.Fatalf("3-D tube deviates from 1-D by %.3f", maxd)
	}
}

func TestSodPlanarSymmetryPreserved(t *testing.T) {
	s := NewSod(64, 6, 6, DefaultSodParams())
	runSodTo(t, s, 0.05)
	base := s.DensityProfile(0, 0)
	for y := 0; y < 6; y++ {
		for z := 0; z < 6; z++ {
			prof := s.DensityProfile(y, z)
			for x := range prof {
				if math.Abs(prof[x]-base[x]) > 1e-9 {
					t.Fatalf("pencil (%d,%d) deviates at x=%d", y, z, x)
				}
			}
		}
	}
}

func TestDensityPositive(t *testing.T) {
	s := NewSod(128, 1, 1, DefaultSodParams())
	runSodTo(t, s, 0.2)
	for i, r := range s.rho {
		if r <= 0 || math.IsNaN(r) {
			t.Fatalf("density %v at cell %d", r, i)
		}
	}
}

func TestSteeringChangesDynamics(t *testing.T) {
	par := DefaultSodParams()
	a := NewSod(128, 1, 1, par)
	b := NewSod(128, 1, 1, par)
	runSodTo(t, a, 0.08)
	runSodTo(t, b, 0.08)

	// Steer b: raise the driver pressure sharply.
	steered := b.Params()
	steered.LeftPressure = 10
	b.SetParams(steered)

	runSodTo(t, a, 0.14)
	runSodTo(t, b, 0.14)

	pa := a.DensityProfile(0, 0)
	pb := b.DensityProfile(0, 0)
	var maxd float64
	for x := range pa {
		if d := math.Abs(pa[x] - pb[x]); d > maxd {
			maxd = d
		}
	}
	if maxd < 0.1 {
		t.Fatalf("steering had no visible effect (max diff %.4f)", maxd)
	}
	if b.Params().LeftPressure != 10 {
		t.Fatal("steered parameter not recorded")
	}
}

func TestSteeringAppliedAtStepBoundary(t *testing.T) {
	s := NewSod(64, 1, 1, DefaultSodParams())
	p := s.Params()
	p.CFL = 0.2
	s.SetParams(p)
	if s.Params().CFL == 0.2 {
		t.Fatal("parameter applied before step boundary")
	}
	s.Step()
	if s.Params().CFL != 0.2 {
		t.Fatal("parameter not applied at step boundary")
	}
}

func TestBowShockFormsDensityPileUp(t *testing.T) {
	s := NewBowShock(96, 48, 1, DefaultBowShockParams())
	for i := 0; i < 300; i++ {
		s.Step()
	}
	// Upstream of the obstacle (x slightly less than 0.35*NX) density must
	// exceed the wind density: the bow shock compression.
	den := s.Density()
	cy := s.NY / 2
	obstacleX := int(0.35 * float64(s.NX))
	var maxUp float64
	for x := 2; x < obstacleX-2; x++ {
		if v := float64(den.At(x, cy, 0)); v > maxUp {
			maxUp = v
		}
	}
	if maxUp < 1.5*DefaultBowShockParams().WindDensity {
		t.Fatalf("no bow shock: max upstream density %.2f", maxUp)
	}
}

func TestBowShockObstacleStaysQuiet(t *testing.T) {
	s := NewBowShock(64, 32, 1, DefaultBowShockParams())
	for i := 0; i < 100; i++ {
		s.Step()
	}
	for i := range s.solid {
		if !s.solid[i] {
			continue
		}
		if s.mx[i] != 0 && math.Abs(s.mx[i]) > 1e-9 {
			t.Fatal("momentum leaked into the rigid obstacle")
		}
	}
}

func TestSnapshotsShapes(t *testing.T) {
	s := NewBowShock(32, 16, 8, DefaultBowShockParams())
	s.Step()
	d := s.Density()
	p := s.Pressure()
	v := s.Velocity()
	if d.NX != 32 || d.NY != 16 || d.NZ != 8 {
		t.Fatal("density shape")
	}
	if p.NX != 32 || len(p.Data) != len(d.Data) {
		t.Fatal("pressure shape")
	}
	if v.NX != 32 || len(v.U) != len(d.Data) {
		t.Fatal("velocity shape")
	}
	for _, x := range p.Data {
		if x < 0 || math.IsNaN(float64(x)) {
			t.Fatal("negative or NaN pressure in snapshot")
		}
	}
}

func TestExactSolutionRegions(t *testing.T) {
	par := DefaultSodParams()
	// Far left: undisturbed left state.
	r, u, p := SodExact(-10, par)
	if r != par.LeftDensity || u != 0 || p != par.LeftPressure {
		t.Fatal("far-left state wrong")
	}
	// Far right: undisturbed right state.
	r, u, p = SodExact(10, par)
	if r != par.RightDensity || u != 0 || p != par.RightPressure {
		t.Fatal("far-right state wrong")
	}
	// Density must be monotone nonincreasing across the rarefaction fan.
	prev := math.Inf(1)
	for xi := -1.2; xi < -0.2; xi += 0.01 {
		r, _, _ := SodExact(xi, par)
		if r > prev+1e-12 {
			t.Fatalf("density increased inside rarefaction at xi=%.2f", xi)
		}
		prev = r
	}
}
