package simengine

import "math"

// SodExact evaluates the exact solution of the Riemann problem posed by the
// Sod initial conditions at similarity coordinate xi = (x - x0) / t,
// returning density, velocity, and pressure. It follows the classical
// two-rarefaction/shock iteration (Toro's exact solver) and is used to
// verify the finite-volume solver.
func SodExact(xi float64, par Params) (rho, u, p float64) {
	g := par.Gamma
	rL, pL := par.LeftDensity, par.LeftPressure
	rR, pR := par.RightDensity, par.RightPressure
	uL, uR := 0.0, 0.0
	cL := math.Sqrt(g * pL / rL)
	cR := math.Sqrt(g * pR / rR)

	pStar, uStar := starRegion(g, rL, uL, pL, cL, rR, uR, pR, cR)

	if xi < uStar {
		// Left of the contact.
		if pStar > pL {
			// Left shock.
			sL := uL - cL*math.Sqrt((g+1)/(2*g)*pStar/pL+(g-1)/(2*g))
			if xi < sL {
				return rL, uL, pL
			}
			rStar := rL * (pStar/pL + (g-1)/(g+1)) / ((g-1)/(g+1)*pStar/pL + 1)
			return rStar, uStar, pStar
		}
		// Left rarefaction.
		head := uL - cL
		cStar := cL * math.Pow(pStar/pL, (g-1)/(2*g))
		tail := uStar - cStar
		switch {
		case xi < head:
			return rL, uL, pL
		case xi > tail:
			rStar := rL * math.Pow(pStar/pL, 1/g)
			return rStar, uStar, pStar
		default:
			u = 2 / (g + 1) * (cL + (g-1)/2*uL + xi)
			c := 2 / (g + 1) * (cL + (g-1)/2*(uL-xi))
			rho = rL * math.Pow(c/cL, 2/(g-1))
			p = pL * math.Pow(c/cL, 2*g/(g-1))
			return rho, u, p
		}
	}
	// Right of the contact.
	if pStar > pR {
		// Right shock.
		sR := uR + cR*math.Sqrt((g+1)/(2*g)*pStar/pR+(g-1)/(2*g))
		if xi > sR {
			return rR, uR, pR
		}
		rStar := rR * (pStar/pR + (g-1)/(g+1)) / ((g-1)/(g+1)*pStar/pR + 1)
		return rStar, uStar, pStar
	}
	// Right rarefaction.
	head := uR + cR
	cStar := cR * math.Pow(pStar/pR, (g-1)/(2*g))
	tail := uStar + cStar
	switch {
	case xi > head:
		return rR, uR, pR
	case xi < tail:
		rStar := rR * math.Pow(pStar/pR, 1/g)
		return rStar, uStar, pStar
	default:
		u = 2 / (g + 1) * (-cR + (g-1)/2*uR + xi)
		c := 2 / (g + 1) * (cR - (g-1)/2*(uR-xi))
		rho = rR * math.Pow(c/cR, 2/(g-1))
		p = pR * math.Pow(c/cR, 2*g/(g-1))
		return rho, u, p
	}
}

// starRegion iterates Newton's method for the star-region pressure and
// velocity between the two nonlinear waves.
func starRegion(g, rL, uL, pL, cL, rR, uR, pR, cR float64) (pStar, uStar float64) {
	fK := func(p, rK, pK, cK float64) (f, df float64) {
		if p > pK {
			// Shock branch.
			aK := 2 / ((g + 1) * rK)
			bK := (g - 1) / (g + 1) * pK
			q := math.Sqrt(aK / (p + bK))
			f = (p - pK) * q
			df = q * (1 - (p-pK)/(2*(p+bK)))
			return f, df
		}
		// Rarefaction branch.
		f = 2 * cK / (g - 1) * (math.Pow(p/pK, (g-1)/(2*g)) - 1)
		df = 1 / (rK * cK) * math.Pow(p/pK, -(g+1)/(2*g))
		return f, df
	}

	// Initial guess: two-rarefaction approximation.
	p := math.Pow((cL+cR-0.5*(g-1)*(uR-uL))/(cL/math.Pow(pL, (g-1)/(2*g))+cR/math.Pow(pR, (g-1)/(2*g))), 2*g/(g-1))
	if p < 1e-10 {
		p = 1e-10
	}
	for it := 0; it < 50; it++ {
		fL, dfL := fK(p, rL, pL, cL)
		fR, dfR := fK(p, rR, pR, cR)
		f := fL + fR + (uR - uL)
		df := dfL + dfR
		step := f / df
		pNew := p - step
		if pNew < 1e-10 {
			pNew = p / 2
		}
		if math.Abs(pNew-p)/p < 1e-12 {
			p = pNew
			break
		}
		p = pNew
	}
	fL, _ := fK(p, rL, pL, cL)
	fR, _ := fK(p, rR, pR, cR)
	uStar = 0.5*(uL+uR) + 0.5*(fR-fL)
	return p, uStar
}
