package simengine

import (
	"math"

	"ricsa/internal/fcp"
)

// sweepTask adapts a sweep to the shared frame-compute pool: one item per
// pencil, per-worker scratch selected by the pool's slot index. Pencils
// along an axis touch disjoint cells and each pencil's float sequence is
// independent of which slot runs it, so a pooled sweep is bit-identical to
// the inline one at any pool width.
type sweepTask struct {
	s    *Sim
	axis int
	dt   float64
	par  Params
}

func (t *sweepTask) Run(worker, p int) {
	t.s.sweepPencil(t.axis, p, t.dt, t.par, t.s.scratch[worker])
}

// sweep applies the 1-D update along the given axis (0=x, 1=y, 2=z) to
// every pencil. This is VH1's sweepx/sweepy/sweepz with the role of
// "normal velocity" rotated per axis. With one worker the pencils run
// inline on the calling goroutine (the allocation-flat mode the frame
// benchmarks measure); otherwise they fan out over the shared
// frame-compute pool through the Sim's queue, competing fairly with other
// sessions' batches.
func (s *Sim) sweep(axis int, dt float64, par Params) {
	var nPencil, pLen int
	switch axis {
	case 0:
		nPencil, pLen = s.NY*s.NZ, s.NX
	case 1:
		nPencil, pLen = s.NX*s.NZ, s.NY
	default:
		nPencil, pLen = s.NX*s.NY, s.NZ
	}
	if pLen < 3 {
		return
	}

	var q *fcp.Queue
	slots := 1
	if s.nWork != 1 && nPencil > 1 {
		q = s.queueFor()
		slots = q.Slots()
	}
	scratch := s.ensureScratch(slots)
	if slots == 1 {
		ws := scratch[0]
		for p := 0; p < nPencil; p++ {
			s.sweepPencil(axis, p, dt, par, ws)
		}
		return
	}
	s.task = sweepTask{s: s, axis: axis, dt: dt, par: par}
	q.Run(nPencil, &s.task)
	s.task = sweepTask{}
}

// ensureScratch returns per-worker pencil scratch sized for the longest
// axis, growing the cached set on first use (or after SetWorkers) and
// reusing it on every subsequent sweep. Only the sweep path touches the
// cache, and workers never share an entry, so no locking is needed.
func (s *Sim) ensureScratch(workers int) []*sweepScratch {
	need := max(s.NX, s.NY, s.NZ)
	if len(s.scratch) < workers {
		old := s.scratch
		s.scratch = make([]*sweepScratch, workers)
		copy(s.scratch, old)
	}
	for i := 0; i < workers; i++ {
		if s.scratch[i] == nil || s.scratch[i].n < need {
			s.scratch[i] = newSweepScratch(need)
		}
	}
	return s.scratch
}

// sweepScratch holds per-worker pencil buffers (2 ghost cells per side),
// sized for pencils up to n cells and reused across sweeps and steps.
type sweepScratch struct {
	n                       int       // pencil capacity
	rho, un, ut1, ut2, pr   []float64 // primitives with ghosts
	fR, fMn, fMt1, fMt2, fE []float64 // interface fluxes
	solid                   []bool
}

const ghosts = 2

func newSweepScratch(n int) *sweepScratch {
	g := n + 2*ghosts
	return &sweepScratch{
		n:   n,
		rho: make([]float64, g), un: make([]float64, g),
		ut1: make([]float64, g), ut2: make([]float64, g), pr: make([]float64, g),
		fR: make([]float64, n+1), fMn: make([]float64, n+1),
		fMt1: make([]float64, n+1), fMt2: make([]float64, n+1), fE: make([]float64, n+1),
		solid: make([]bool, g),
	}
}

// pencilBase returns the flat index of pencil p's first cell and the flat
// stride between consecutive cells along the axis, so the per-cell loops
// index with one add instead of a div/mod + idx() per cell.
func (s *Sim) pencilBase(axis, p int) (base, stride int) {
	switch axis {
	case 0:
		y := p % s.NY
		z := p / s.NY
		return (z*s.NY + y) * s.NX, 1
	case 1:
		x := p % s.NX
		z := p / s.NX
		return z*s.NY*s.NX + x, s.NX
	default:
		x := p % s.NX
		y := p / s.NX
		return y*s.NX + x, s.NX * s.NY
	}
}

// sweepPencil updates one pencil with MUSCL-HLL.
func (s *Sim) sweepPencil(axis, p int, dt float64, par Params, ws *sweepScratch) {
	var n int
	switch axis {
	case 0:
		n = s.NX
	case 1:
		n = s.NY
	default:
		n = s.NZ
	}
	g := par.Gamma
	g1 := g - 1

	// Hoist the per-axis velocity rotation out of the cell loops: mn is the
	// normal momentum component, mt1/mt2 the transverse ones. The gather and
	// update below then run axis-free, with the same operand order (and so
	// bit-identical arithmetic) as the per-cell switch they replace.
	var mn, mt1, mt2 []float64
	switch axis {
	case 0:
		mn, mt1, mt2 = s.mx, s.my, s.mz
	case 1:
		mn, mt1, mt2 = s.my, s.mx, s.mz
	default:
		mn, mt1, mt2 = s.mz, s.mx, s.my
	}
	base, stride := s.pencilBase(axis, p)

	// Gather primitives with the axis-appropriate velocity rotation.
	for k, i := 0, base; k < n; k, i = k+1, i+stride {
		j := k + ghosts
		r := s.rho[i]
		if r < 1e-12 {
			r = 1e-12
		}
		un, ut1, ut2 := mn[i]/r, mt1[i]/r, mt2[i]/r
		kin := 0.5 * r * (un*un + ut1*ut1 + ut2*ut2)
		pr := g1 * (s.en[i] - kin)
		if pr < 1e-12 {
			pr = 1e-12
		}
		ws.rho[j], ws.un[j], ws.ut1[j], ws.ut2[j], ws.pr[j] = r, un, ut1, ut2, pr
		ws.solid[j] = s.solid[i]
	}

	s.fillGhosts(axis, n, par, ws)

	// Rigid cells reflect: treat a solid neighbor as a mirror with negated
	// normal velocity so fluxes vanish at the wall.
	for j := ghosts; j < n+ghosts; j++ {
		if !ws.solid[j] {
			continue
		}
		// Copy the nearest fluid state mirrored.
		if j > 0 && !ws.solid[j-1] {
			ws.rho[j], ws.pr[j] = ws.rho[j-1], ws.pr[j-1]
			ws.un[j] = -ws.un[j-1]
			ws.ut1[j], ws.ut2[j] = 0, 0
		} else if j+1 < len(ws.solid) && !ws.solid[j+1] {
			ws.rho[j], ws.pr[j] = ws.rho[j+1], ws.pr[j+1]
			ws.un[j] = -ws.un[j+1]
			ws.ut1[j], ws.ut2[j] = 0, 0
		} else {
			ws.un[j], ws.ut1[j], ws.ut2[j] = 0, 0, 0
		}
	}

	// Interface fluxes with minmod-limited reconstruction.
	recon := func(arr []float64, j int) (left, right float64) {
		sl := minmod(arr[j]-arr[j-1], arr[j+1]-arr[j])
		sr := minmod(arr[j+1]-arr[j], arr[j+2]-arr[j+1])
		return arr[j] + 0.5*sl, arr[j+1] - 0.5*sr
	}
	for f := 0; f <= n; f++ {
		jL := f + ghosts - 1
		rL, rR := recon(ws.rho, jL)
		uL, uR := recon(ws.un, jL)
		t1L, t1R := recon(ws.ut1, jL)
		t2L, t2R := recon(ws.ut2, jL)
		pL, pR := recon(ws.pr, jL)
		if rL < 1e-12 {
			rL = 1e-12
		}
		if rR < 1e-12 {
			rR = 1e-12
		}
		if pL < 1e-12 {
			pL = 1e-12
		}
		if pR < 1e-12 {
			pR = 1e-12
		}
		hll(g, rL, uL, t1L, t2L, pL, rR, uR, t1R, t2R, pR,
			&ws.fR[f], &ws.fMn[f], &ws.fMt1[f], &ws.fMt2[f], &ws.fE[f])
	}

	// Conservative update, skipping solid cells.
	lam := dt / s.dx
	for k, i := 0, base; k < n; k, i = k+1, i+stride {
		if s.solid[i] {
			continue
		}
		dR := -lam * (ws.fR[k+1] - ws.fR[k])
		dMn := -lam * (ws.fMn[k+1] - ws.fMn[k])
		dMt1 := -lam * (ws.fMt1[k+1] - ws.fMt1[k])
		dMt2 := -lam * (ws.fMt2[k+1] - ws.fMt2[k])
		dE := -lam * (ws.fE[k+1] - ws.fE[k])
		s.rho[i] += dR
		if s.rho[i] < 1e-12 {
			s.rho[i] = 1e-12
		}
		mn[i] += dMn
		mt1[i] += dMt1
		mt2[i] += dMt2
		s.en[i] += dE
	}
}

// fillGhosts sets boundary ghost cells: outflow (zero gradient) everywhere,
// except the bow shock's -x inflow which is pinned to the wind state.
func (s *Sim) fillGhosts(axis, n int, par Params, ws *sweepScratch) {
	for gi := 0; gi < ghosts; gi++ {
		// Low side.
		ws.rho[gi], ws.un[gi] = ws.rho[ghosts], ws.un[ghosts]
		ws.ut1[gi], ws.ut2[gi], ws.pr[gi] = ws.ut1[ghosts], ws.ut2[ghosts], ws.pr[ghosts]
		ws.solid[gi] = false
		// High side.
		hi := n + ghosts + gi
		ws.rho[hi], ws.un[hi] = ws.rho[n+ghosts-1], ws.un[n+ghosts-1]
		ws.ut1[hi], ws.ut2[hi], ws.pr[hi] = ws.ut1[n+ghosts-1], ws.ut2[n+ghosts-1], ws.pr[n+ghosts-1]
		ws.solid[hi] = false
	}
	if s.Problem == ProblemBowShock && axis == 0 {
		for gi := 0; gi < ghosts; gi++ {
			ws.rho[gi] = par.WindDensity
			ws.un[gi] = par.WindVelocity
			ws.ut1[gi], ws.ut2[gi] = 0, 0
			ws.pr[gi] = par.WindPressure
		}
	}
}

// hll computes the HLL flux for 1-D Euler with two passive transverse
// momentum components.
func hll(g, rL, uL, t1L, t2L, pL, rR, uR, t1R, t2R, pR float64,
	fR, fMn, fMt1, fMt2, fE *float64) {
	cL := math.Sqrt(g * pL / rL)
	cR := math.Sqrt(g * pR / rR)
	sL := math.Min(uL-cL, uR-cR)
	sR := math.Max(uL+cL, uR+cR)

	eL := pL/(g-1) + 0.5*rL*(uL*uL+t1L*t1L+t2L*t2L)
	eR := pR/(g-1) + 0.5*rR*(uR*uR+t1R*t1R+t2R*t2R)

	// Physical fluxes.
	fRL, fMnL := rL*uL, rL*uL*uL+pL
	fMt1L, fMt2L := rL*uL*t1L, rL*uL*t2L
	fEL := (eL + pL) * uL
	fRR, fMnR := rR*uR, rR*uR*uR+pR
	fMt1R, fMt2R := rR*uR*t1R, rR*uR*t2R
	fER := (eR + pR) * uR

	switch {
	case sL >= 0:
		*fR, *fMn, *fMt1, *fMt2, *fE = fRL, fMnL, fMt1L, fMt2L, fEL
	case sR <= 0:
		*fR, *fMn, *fMt1, *fMt2, *fE = fRR, fMnR, fMt1R, fMt2R, fER
	default:
		inv := 1 / (sR - sL)
		*fR = (sR*fRL - sL*fRR + sL*sR*(rR-rL)) * inv
		*fMn = (sR*fMnL - sL*fMnR + sL*sR*(rR*uR-rL*uL)) * inv
		*fMt1 = (sR*fMt1L - sL*fMt1R + sL*sR*(rR*t1R-rL*t1L)) * inv
		*fMt2 = (sR*fMt2L - sL*fMt2R + sL*sR*(rR*t2R-rL*t2L)) * inv
		*fE = (sR*fEL - sL*fER + sL*sR*(eR-eL)) * inv
	}
}

func minmod(a, b float64) float64 {
	if a*b <= 0 {
		return 0
	}
	if math.Abs(a) < math.Abs(b) {
		return a
	}
	return b
}
