package cm

import (
	"testing"

	"ricsa/internal/cost"
	"ricsa/internal/netsim"
)

// lossyTestbed applies a uniform per-packet loss probability to every link.
func lossyTestbed(seed int64, loss float64) *netsim.Network {
	tb := netsim.DefaultTestbed()
	tb.Loss = loss
	tb.CrossMean = 0.9
	return netsim.Testbed(seed, tb)
}

// TestLossEstimatesSurface: the initial sweep observes the seeded loss
// process on every edge and surfaces it through Estimates, Status, and
// the published graph.
func TestLossEstimatesSurface(t *testing.T) {
	m := New(lossyTestbed(5, 0.05), testConfig())
	// A single probe on one edge can legitimately draw zero losses; the
	// sweep as a whole must still see the process.
	positive, total := 0, 0
	for key, est := range m.Estimates() {
		total++
		if est.Loss > 0 {
			positive++
		}
		if est.Loss > 0.25 {
			t.Fatalf("edge %s loss estimate %v implausible for a 5%% process", key, est.Loss)
		}
		if est.LossConf < 0 || est.LossConf > 1 {
			t.Fatalf("edge %s loss confidence %v outside [0, 1]", key, est.LossConf)
		}
	}
	if positive*2 < total {
		t.Fatalf("only %d of %d edges observed the 5%% loss process", positive, total)
	}
	statusPositive := 0
	for _, es := range m.Status().Edges {
		if es.Loss > 0 {
			statusPositive++
		}
	}
	if statusPositive != positive {
		t.Fatalf("status surfaces %d lossy edges, estimates %d", statusPositive, positive)
	}
	graphPositive := 0
	for _, row := range m.Graph().Adj {
		for _, e := range row {
			if e.Loss > 0 {
				if e.LossConf <= 0 {
					t.Fatalf("published lossy edge with zero confidence: %+v", e)
				}
				graphPositive++
			}
		}
	}
	if graphPositive != positive {
		t.Fatalf("published graph carries %d lossy edges, estimates %d", graphPositive, positive)
	}
	// A lossless network keeps zero loss everywhere.
	clean := New(quietTestbed(5), testConfig())
	for key, est := range clean.Estimates() {
		if est.Loss != 0 {
			t.Fatalf("lossless edge %s reports loss %v", key, est.Loss)
		}
	}
}

// TestTransportModePublishAndRenegotiate: the configured mode is stamped
// onto snapshots, SetTransportMode re-stamps without re-measuring, and
// tolerance-gated republishes fire the renegotiation hook.
func TestTransportModePublishAndRenegotiate(t *testing.T) {
	renegotiations := 0
	cfg := testConfig()
	cfg.Transport = cost.TransportAuto
	cfg.OnRepublish = func() { renegotiations++ }
	m := New(lossyTestbed(6, 0.03), cfg)
	if renegotiations != 0 {
		t.Fatal("construction-time publish must not renegotiate")
	}
	g := m.Graph()
	if g.Transport != cost.TransportAuto {
		t.Fatalf("published transport %v, want auto", g.Transport)
	}

	rev := g.Rev
	m.SetTransportMode(cost.TransportFEC)
	g2 := m.Graph()
	if g2.Transport != cost.TransportFEC || g2.Rev == rev {
		t.Fatalf("mode switch: transport %v rev %d (old %d)", g2.Transport, g2.Rev, rev)
	}
	if renegotiations != 1 {
		t.Fatalf("mode switch fired %d renegotiations, want 1", renegotiations)
	}
	m.SetTransportMode(cost.TransportFEC) // no-op: same mode
	if renegotiations != 1 || m.Graph().Rev != g2.Rev {
		t.Fatal("same-mode switch must not republish")
	}

	// A drastic condition change crossing the tolerance republishes and
	// renegotiates; repeating the sweep under unchanged conditions doesn't.
	for _, l := range m.Network().Links() {
		l.AB.SetLoss(0.30)
		l.BA.SetLoss(0.30)
	}
	m.MeasureAll()
	if renegotiations != 2 {
		t.Fatalf("loss surge fired %d renegotiations, want 2", renegotiations)
	}
	if m.Graph().Transport != cost.TransportFEC {
		t.Fatal("republished snapshot dropped the transport mode")
	}
	m.MeasureAll()
	m.MeasureAll()
	if renegotiations > 4 {
		t.Fatalf("steady conditions keep renegotiating (%d)", renegotiations)
	}
}
