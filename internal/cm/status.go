package cm

// EdgeStatus is one directed edge's control-plane view: the current EWMA
// estimate, the fit confidence of its last probe, and how stale it is in
// probe epochs.
type EdgeStatus struct {
	From         string  `json:"from"`
	To           string  `json:"to"`
	BandwidthBps float64 `json:"bandwidth_bps"`
	DelaySeconds float64 `json:"delay_s"`
	Confidence   float64 `json:"confidence"`
	// Loss and LossConfidence are the packet-loss estimate FEC redundancy
	// is provisioned from (DESIGN §13).
	Loss           float64 `json:"loss"`
	LossConfidence float64 `json:"loss_confidence"`
	ProbeEpoch     uint64  `json:"probe_epoch"`
	StaleTicks     uint64  `json:"stale_ticks"`
}

// Status is the Manager's observable state, shaped for the web control
// plane (GET /api/cm).
type Status struct {
	ProbeEpoch    uint64       `json:"probe_epoch"`
	GraphRev      uint64       `json:"graph_rev"`
	Restamps      uint64       `json:"restamps"`
	Adaptations   uint64       `json:"adaptations"`
	ProbeTimeouts uint64       `json:"probe_timeouts"`
	TransportMode string       `json:"transport_mode"`
	Tolerance     float64      `json:"tolerance"`
	Nodes         int          `json:"nodes"`
	NodeNames     []string     `json:"node_names"`
	Edges         []EdgeStatus `json:"edges"`
	CacheHits     uint64       `json:"cache_hits"`
	CacheMisses   uint64       `json:"cache_misses"`
	CacheEntries  int          `json:"cache_entries"`
}

// Status snapshots the control-plane view.
func (m *Manager) Status() Status {
	cs := m.cache.Stats()
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Status{
		ProbeEpoch:    m.epoch,
		Restamps:      m.restamps,
		Adaptations:   m.adaptations,
		ProbeTimeouts: m.probeTimeouts,
		TransportMode: m.cfg.Transport.String(),
		Tolerance:     m.cfg.Tolerance,
		Nodes:         len(m.nodes),
		NodeNames:     make([]string, 0, len(m.nodes)),
		CacheHits:     cs.Hits,
		CacheMisses:   cs.Misses,
		CacheEntries:  cs.Entries,
	}
	if m.graph != nil {
		st.GraphRev = m.graph.Rev
	}
	for _, nd := range m.nodes {
		st.NodeNames = append(st.NodeNames, nd.Name)
	}
	for _, e := range m.edges {
		es := EdgeStatus{
			From:           e.from,
			To:             e.to,
			BandwidthBps:   e.bw,
			DelaySeconds:   e.delay,
			Confidence:     e.confidence,
			Loss:           e.loss,
			LossConfidence: e.lossConf,
			ProbeEpoch:     e.lastProbeEpoch,
		}
		if m.epoch > e.lastProbeEpoch {
			es.StaleTicks = m.epoch - e.lastProbeEpoch
		}
		st.Edges = append(st.Edges, es)
	}
	return st
}

// Adaptations reports the total Adapter-triggered re-optimizations.
func (m *Manager) Adaptations() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.adaptations
}

// ProbeEpoch reports the number of completed probe ticks and full sweeps.
func (m *Manager) ProbeEpoch() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.epoch
}

// Restamps reports how many re-stamped graph snapshots have been published
// after the initial measurement.
func (m *Manager) Restamps() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.restamps
}

// ProbeTimeouts reports how many probe transfers were abandoned at the
// configured probe budget — the dark-link detection events.
func (m *Manager) ProbeTimeouts() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.probeTimeouts
}
