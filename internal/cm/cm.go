// Package cm is the Central Manager of the paper's Section 2 architecture,
// extracted into one reusable control loop: measure the network, optimize
// the pipeline mapping (the Eq. 9-10 dynamic program, memoized), deploy the
// resulting VRT, monitor realized frame delay against the VRT's prediction,
// and adapt when conditions drift. Both of the repo's session models are
// clients of this engine — emulated steering.Session/Deployment drive it on
// the netsim virtual clock, live steering.SessionManager sessions on wall
// time — so the measure/optimize/adapt logic exists exactly once.
//
// Measurement is continuous and incremental. A Manager keeps one EWMA
// estimate per directed edge, fed by the Section 4.3 EPB probes: a full
// sweep (MeasureAll) is authoritative and adopts raw values, while the
// background Prober re-probes a small round-robin subset of links per tick
// and nudges estimates by an EWMA step scaled by the probe's fit confidence.
// Either way, the published pipeline.Graph snapshot is only replaced — and
// its Rev only re-stamped — when an estimate moves past the configured
// tolerance, so an unchanged network keeps its fingerprint and every
// optimizer consultation keeps hitting the shared cache.
package cm

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"ricsa/internal/clock"
	"ricsa/internal/cost"
	"ricsa/internal/netsim"
	"ricsa/internal/pipeline"
)

// Node-inventory defaults applied to every host (previously hard-coded in
// the steering measurement layer): intra-cluster scatter bandwidth and the
// fixed parallel-invocation overhead of Section 5.3.1.
const (
	DefaultScatterBW        = 80 * netsim.MB
	DefaultParallelOverhead = 0.8
)

// Config tunes a Manager. The zero value selects workable defaults for
// every knob; ProbeInterval <= 0 leaves the background Prober off (virtual-
// clock clients call ProbeTick themselves).
type Config struct {
	// ProbeSizes is the test-message sweep per probe (nil selects
	// cost.DefaultProbeSizes) and ProbeRepeats the per-size averaging.
	ProbeSizes   []int
	ProbeRepeats int
	// ProbeInterval is the cadence of the background Prober started by
	// Start, measured on Clock. <= 0 disables it.
	ProbeInterval time.Duration
	// ProbeLinksPerTick is how many directed edges one ProbeTick re-probes,
	// round-robin over the edge set (<= 0 selects 2).
	ProbeLinksPerTick int
	// Tolerance is the relative drift an EWMA estimate must show against
	// the published graph before the edge is patched and the graph
	// re-stamped (<= 0 selects 0.05). Below it, the network is considered
	// unchanged and cached mappings stay valid.
	Tolerance float64
	// DelayFloor is the minimum absolute drift (seconds) an edge's
	// fixed-delay estimate must show before it counts: intercept
	// estimates are noisy in relative terms on short paths, and a
	// sub-millisecond wobble on a 5ms edge is irrelevant to frame delays
	// (<= 0 selects 2ms).
	DelayFloor float64
	// EWMAAlpha is the base smoothing step for incremental probe updates,
	// scaled per probe by its fit confidence (<= 0 selects 0.25 — small
	// enough that steady cross-traffic wobble stays inside the tolerance,
	// large enough that a collapsed link crosses it on its first
	// re-probe).
	EWMAAlpha float64
	// DeviationTolerance and DeviationWindow parameterize Adapters: a frame
	// whose observed delay exceeds prediction by more than the tolerance
	// fraction counts as deviating, and DeviationWindow consecutive
	// deviations trigger re-optimization (<= 0 select 0.5 and 2).
	DeviationTolerance float64
	DeviationWindow    int
	// CacheCapacity bounds the optimizer cache (<= 0 selects the pipeline
	// default).
	CacheCapacity int
	// ProbeBudget bounds each probe transfer in *virtual* time: a transfer
	// that has not completed within it (the link is dark or collapsed)
	// aborts the sweep and the edge's estimates adopt the collapse the
	// timeout implies. <= 0 selects 60s — generous enough that no healthy
	// testbed probe ever hits it, so existing runs are unchanged; scenario
	// runs with dark links configure a tighter budget.
	ProbeBudget time.Duration
	// Transport is the delivery model stamped onto every published graph
	// snapshot, so the optimizer prices transfers under it (see
	// cost.DeliverySeconds). The zero value keeps the historical NACK
	// pricing.
	Transport cost.TransportMode
	// OnRepublish, when set, is invoked (outside the Manager's lock) each
	// time a tolerance-gated re-stamped snapshot is published — the hook
	// transport layers use to re-negotiate per-flow FEC mode against the
	// fresh loss estimates (fec.Negotiator.Renegotiate).
	OnRepublish func()
	// Clock is the timing source of the background Prober. nil selects the
	// wall clock; the scenario engine and deterministic tests inject a
	// clock.Virtual. (This only paces the Prober's ticks — probe transfers
	// themselves always run on the emulated network's own virtual clock.)
	Clock clock.Clock
}

func (c *Config) fill() {
	if c.ProbeRepeats < 1 {
		c.ProbeRepeats = 1
	}
	if c.ProbeLinksPerTick <= 0 {
		c.ProbeLinksPerTick = 2
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 0.05
	}
	if c.DelayFloor <= 0 {
		c.DelayFloor = 0.002
	}
	if c.EWMAAlpha <= 0 {
		c.EWMAAlpha = 0.25
	}
	if c.DeviationTolerance <= 0 {
		c.DeviationTolerance = 0.5
	}
	if c.DeviationWindow <= 0 {
		c.DeviationWindow = 2
	}
	if c.ProbeBudget <= 0 {
		c.ProbeBudget = 60 * time.Second
	}
	if c.Clock == nil {
		c.Clock = clock.Wall()
	}
}

// edgeState is the Manager's per-directed-edge measurement record.
type edgeState struct {
	from, to       string
	fromIdx, toIdx int
	ch             *netsim.Channel
	bw             float64 // EWMA effective bandwidth, bytes/s
	delay          float64 // EWMA minimum delay, seconds
	confidence     float64 // last probe's fit confidence
	r2             float64 // last probe's fit quality
	loss           float64 // EWMA packet loss fraction observed while probing
	lossConf       float64 // confidence of the loss estimate, in [0, 1]
	lastProbeEpoch uint64
	everProbed     bool
}

// lossSample reads the loss fraction a probe's packets experienced from
// the channel's own accounting: the Sent/Lost deltas across the probe.
// The confidence grows with the sample size — a handful of packets says
// little about a few-percent loss process.
func lossSample(ch *netsim.Channel, before netsim.ChannelStats) (loss, conf float64) {
	after := ch.Stats()
	sent := after.Sent - before.Sent
	if sent == 0 {
		return 0, 0
	}
	lost := after.Lost - before.Lost
	loss = float64(lost) / float64(sent)
	conf = float64(sent) / float64(sent+128)
	return loss, conf
}

// Manager is one Central Manager instance: the measured graph snapshot, the
// per-edge estimate store, the shared memoized optimizer, and the counters
// the control plane exposes. All methods are safe for concurrent use; the
// underlying netsim.Network is only ever touched under the Manager's lock.
type Manager struct {
	cfg Config

	mu     sync.Mutex
	net    *netsim.Network
	nodes  []pipeline.Node // immutable inventory, sorted by name
	idx    map[string]int
	edges  []*edgeState // deterministic (link, direction) order
	graph  *pipeline.Graph
	cache  *pipeline.Cache
	epoch  uint64 // probe ticks + full sweeps completed
	cursor int    // round-robin position for ProbeTick

	restamps      uint64 // graph revisions published after the initial one
	adaptations   uint64 // Adapter-triggered re-optimizations
	probeTimeouts uint64 // probe transfers abandoned at the probe budget

	proberStop chan struct{}
	proberDone chan struct{}
}

// New builds a Manager over the emulated network, runs the initial full
// measurement sweep, and publishes the first graph snapshot.
func New(net *netsim.Network, cfg Config) *Manager {
	cfg.fill()
	m := &Manager{
		cfg:   cfg,
		cache: pipeline.NewCache(cfg.CacheCapacity),
	}
	m.bind(net)
	m.mu.Lock()
	m.measureAllLocked(cfg.ProbeSizes, cfg.ProbeRepeats)
	m.mu.Unlock()
	return m
}

// bind inventories the network's nodes (sorted by name for deterministic
// indexes) and builds the edge-state list in (link, direction) order.
func (m *Manager) bind(net *netsim.Network) {
	nodes := net.Nodes()
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Name < nodes[j].Name })
	m.net = net
	// Published graph snapshots alias the node inventory (NewGraph and
	// ApplyEdgeUpdates share the Nodes slice), so rebinding must build a
	// fresh slice — reusing the backing array would mutate snapshots that
	// concurrent optimizer calls are reading.
	m.nodes = make([]pipeline.Node, 0, len(nodes))
	m.idx = make(map[string]int, len(nodes))
	for i, nd := range nodes {
		m.idx[nd.Name] = i
		m.nodes = append(m.nodes, pipeline.Node{
			Name:             nd.Name,
			Power:            nd.Power,
			HasGPU:           nd.HasGPU,
			Workers:          nd.Workers,
			ScatterBW:        DefaultScatterBW,
			ParallelOverhead: DefaultParallelOverhead,
		})
	}
	prior := make(map[string]*edgeState, len(m.edges))
	for _, e := range m.edges {
		prior[e.from+"->"+e.to] = e
	}
	m.edges = make([]*edgeState, 0, len(prior))
	// The round-robin cursor indexed the old edge list; restart the pass.
	m.cursor = 0
	for _, l := range net.Links() {
		for _, ch := range []*netsim.Channel{l.AB, l.BA} {
			st := prior[ch.From.Name+"->"+ch.To.Name]
			if st == nil {
				st = &edgeState{from: ch.From.Name, to: ch.To.Name}
			}
			st.ch = ch
			st.fromIdx = m.idx[ch.From.Name]
			st.toIdx = m.idx[ch.To.Name]
			m.edges = append(m.edges, st)
		}
	}
}

// AdoptNetwork rebinds the Manager to a fresh emulation of the same
// topology (a new measurement epoch of the same six-site testbed, say) and
// runs a gated full sweep. Estimates carry over by edge name, so a new
// network exhibiting the same conditions produces no graph re-stamp — and
// therefore no cache misses. The node-name set must match the original.
func (m *Manager) AdoptNetwork(net *netsim.Network) error {
	m.mu.Lock()
	if len(net.Nodes()) != len(m.nodes) {
		m.mu.Unlock()
		return fmt.Errorf("cm: adopted network has %d nodes, want %d", len(net.Nodes()), len(m.nodes))
	}
	for _, nd := range net.Nodes() {
		if _, ok := m.idx[nd.Name]; !ok {
			m.mu.Unlock()
			return fmt.Errorf("cm: adopted network adds unknown node %q", nd.Name)
		}
	}
	m.bind(net)
	pub := m.measureAllLocked(m.cfg.ProbeSizes, m.cfg.ProbeRepeats)
	m.mu.Unlock()
	m.notifyRepublish(pub)
	return nil
}

// MeasureAll runs a full authoritative probing sweep with the configured
// sizes: every directed edge is probed, estimates adopt the raw results,
// and the graph is re-stamped only if something moved past the tolerance.
func (m *Manager) MeasureAll() {
	m.mu.Lock()
	pub := m.measureAllLocked(m.cfg.ProbeSizes, m.cfg.ProbeRepeats)
	m.mu.Unlock()
	m.notifyRepublish(pub)
}

// MeasureAllWith is MeasureAll with an explicit probe sweep.
func (m *Manager) MeasureAllWith(sizes []int, repeats int) {
	m.mu.Lock()
	if repeats < 1 {
		repeats = 1
	}
	pub := m.measureAllLocked(sizes, repeats)
	m.mu.Unlock()
	m.notifyRepublish(pub)
}

// notifyRepublish fires the renegotiation hook for a re-stamped snapshot.
// Never called for the construction-time publish: there are no flows to
// renegotiate before the first graph exists.
func (m *Manager) notifyRepublish(published bool) {
	if published && m.cfg.OnRepublish != nil {
		m.cfg.OnRepublish()
	}
}

func (m *Manager) measureAllLocked(sizes []int, repeats int) bool {
	m.epoch++
	for _, st := range m.edges {
		before := st.ch.Stats()
		est := cost.MeasureEPBBounded(st.ch, sizes, repeats, m.cfg.ProbeBudget)
		if est.TimedOut {
			m.probeTimeouts++
		}
		// Full sweeps are authoritative: adopt raw values so a genuinely
		// changed network converges in one sweep instead of EWMA steps.
		// (TimedOut estimates carry the collapse bound in EPB/MinDelay, so
		// adopting them raw marks a dark edge repulsive immediately.)
		st.bw = est.EPB
		st.delay = est.MinDelay.Seconds()
		st.confidence = est.Confidence
		st.r2 = est.R2
		st.loss, st.lossConf = lossSample(st.ch, before)
		st.lastProbeEpoch = m.epoch
		st.everProbed = true
	}
	return m.publishLocked()
}

// ProbeTick re-probes the next ProbeLinksPerTick edges round-robin and
// folds the results into the EWMA estimates, weighting the step by each
// probe's fit confidence. It returns true when the drift crossed the
// tolerance and a re-stamped graph snapshot was published.
func (m *Manager) ProbeTick() bool {
	m.mu.Lock()
	if len(m.edges) == 0 {
		m.mu.Unlock()
		return false
	}
	m.epoch++
	k := m.cfg.ProbeLinksPerTick
	if k > len(m.edges) {
		k = len(m.edges)
	}
	for i := 0; i < k; i++ {
		st := m.edges[m.cursor]
		m.cursor = (m.cursor + 1) % len(m.edges)
		before := st.ch.Stats()
		est := cost.MeasureEPBBounded(st.ch, m.cfg.ProbeSizes, m.cfg.ProbeRepeats, m.cfg.ProbeBudget)
		obsLoss, obsLossConf := lossSample(st.ch, before)
		if est.TimedOut {
			m.probeTimeouts++
			// The probe never completed: the link is dark or collapsed.
			// Adopt the timeout's collapse bound raw — a dead edge must be
			// repulsive after its first re-probe, not after an EWMA glide.
			st.bw = est.EPB
			st.delay = est.MinDelay.Seconds()
			st.confidence = 0
			st.r2 = 0
			st.loss, st.lossConf = obsLoss, obsLossConf
			st.lastProbeEpoch = m.epoch
			st.everProbed = true
			continue
		}
		if est.EPB <= 0 || est.Confidence <= 0 {
			continue // degenerate fit: keep the prior estimate
		}
		alpha := m.cfg.EWMAAlpha * est.Confidence
		lossAlpha := m.cfg.EWMAAlpha * obsLossConf
		if !st.everProbed {
			alpha = 1
			lossAlpha = 1
		}
		st.bw += alpha * (est.EPB - st.bw)
		st.delay += alpha * (est.MinDelay.Seconds() - st.delay)
		st.confidence = est.Confidence
		st.r2 = est.R2
		st.loss += lossAlpha * (obsLoss - st.loss)
		st.lossConf = obsLossConf
		st.lastProbeEpoch = m.epoch
		st.everProbed = true
	}
	pub := m.publishLocked()
	m.mu.Unlock()
	m.notifyRepublish(pub)
	return pub
}

// drifted reports whether the estimate (want) moved past the tolerance
// relative to the published value (have). floor is the minimum absolute
// drift that counts, guarding near-zero baselines and sub-noise wobble.
func (m *Manager) drifted(have, want, floor float64) bool {
	diff := want - have
	if diff < 0 {
		diff = -diff
	}
	base := have
	if base < 0 {
		base = -base
	}
	th := m.cfg.Tolerance * base
	if th < floor {
		th = floor
	}
	return diff > th
}

// publishLocked compares the estimate store against the published graph and
// replaces the snapshot only on tolerance-crossing drift. Returns true when
// a new snapshot (with a fresh Rev) was published.
func (m *Manager) publishLocked() bool {
	if m.graph == nil {
		g := pipeline.NewGraph(m.nodes...)
		g.Transport = m.cfg.Transport
		for _, st := range m.edges {
			g.AddEdge(st.fromIdx, st.toIdx, st.bw, st.delay)
			row := g.Adj[st.fromIdx]
			row[len(row)-1].Loss = st.loss
			row[len(row)-1].LossConf = st.lossConf
		}
		g.Rev = pipeline.NextGraphRev()
		m.graph = g
		return true
	}
	var ups []pipeline.EdgeUpdate
	for _, st := range m.edges {
		up := pipeline.EdgeUpdate{From: st.fromIdx, To: st.toIdx, Bandwidth: st.bw, Delay: st.delay,
			Loss: st.loss, LossConf: st.lossConf}
		e := m.graph.FindEdge(st.fromIdx, st.toIdx)
		if e == nil {
			ups = append(ups, up)
			continue
		}
		// Loss drifts are gated on an absolute floor: a fraction of a
		// percent either way is probe noise, not a condition change worth
		// repricing (and re-negotiating) every mapping for.
		if m.drifted(e.Bandwidth, st.bw, 1) || m.drifted(e.Delay, st.delay, m.cfg.DelayFloor) ||
			m.drifted(e.Loss, st.loss, 0.01) {
			ups = append(ups, up)
		}
	}
	if len(ups) == 0 {
		return false
	}
	m.graph = m.graph.ApplyEdgeUpdates(ups)
	m.restamps++
	return true
}

// Graph returns the current published snapshot. Snapshots are immutable;
// holders keep a consistent view across concurrent probe ticks.
func (m *Manager) Graph() *pipeline.Graph {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.graph
}

// Network returns the emulated network the Manager probes. Callers that
// perturb it (tests degrading a link) race only with the prober; drive
// ProbeTick manually or keep the background prober off while doing so.
func (m *Manager) Network() *netsim.Network {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.net
}

// Cache exposes the shared memoized optimizer.
func (m *Manager) Cache() *pipeline.Cache { return m.cache }

// CacheStats reports the shared optimizer-cache counters.
func (m *Manager) CacheStats() pipeline.CacheStats { return m.cache.Stats() }

// Estimates returns the per-edge measurement store as the estimator's
// result type, keyed "from->to" (the shape the probing layer historically
// reported).
func (m *Manager) Estimates() map[string]cost.PathEstimate {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]cost.PathEstimate, len(m.edges))
	for _, st := range m.edges {
		out[st.from+"->"+st.to] = cost.PathEstimate{
			EPB:        st.bw,
			MinDelay:   time.Duration(st.delay * float64(time.Second)),
			R2:         st.r2,
			Confidence: st.confidence,
			Loss:       st.loss,
			LossConf:   st.lossConf,
		}
	}
	return out
}

// SetTransportMode switches the delivery model stamped onto published
// graphs. If the mode actually changes, the current snapshot is replaced
// by a re-stamped copy (the measurements are untouched) and the
// renegotiation hook fires — every cached mapping was priced under the
// old model.
func (m *Manager) SetTransportMode(mode cost.TransportMode) {
	m.mu.Lock()
	if m.cfg.Transport == mode {
		m.mu.Unlock()
		return
	}
	m.cfg.Transport = mode
	pub := false
	if m.graph != nil {
		g := *m.graph
		g.Transport = mode
		g.Rev = pipeline.NextGraphRev()
		m.graph = &g
		m.restamps++
		pub = true
	}
	m.mu.Unlock()
	m.notifyRepublish(pub)
}

// TransportMode reports the delivery model published graphs are stamped
// with.
func (m *Manager) TransportMode() cost.TransportMode {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cfg.Transport
}

// Optimize answers a session's consultation: the memoized Eq. 9-10 dynamic
// program over the current graph snapshot between the named endpoints.
func (m *Manager) Optimize(p *pipeline.Pipeline, srcName, dstName string) (*pipeline.VRT, error) {
	m.mu.Lock()
	g := m.graph
	m.mu.Unlock()
	src, dst := g.NodeIndex(srcName), g.NodeIndex(dstName)
	if src < 0 || dst < 0 {
		return nil, fmt.Errorf("cm: unknown endpoint %q or %q", srcName, dstName)
	}
	return m.cache.Optimize(g, p, src, dst)
}

// OptimizeMulti answers a fan-out consultation: the memoized shared-tree
// dynamic program over the current graph snapshot from the named data
// source to the named viewer hosts. Identical (graph, pipeline, source,
// viewer-set) instances — every viewer of a session after the first — are
// answered from the cache.
func (m *Manager) OptimizeMulti(p *pipeline.Pipeline, srcName string, dstNames []string) (*pipeline.VRTree, error) {
	return m.OptimizeMultiTiered(p, srcName, dstNames, cost.TierFull)
}

// OptimizeMultiTiered is OptimizeMulti with a per-branch tier budget: the
// optimizer may degrade individual delivery branches down the quality
// ladder (up to maxTier) when the delivery gain beats the fidelity
// penalty. The tier budget is part of the cache key.
func (m *Manager) OptimizeMultiTiered(p *pipeline.Pipeline, srcName string, dstNames []string, maxTier cost.Tier) (*pipeline.VRTree, error) {
	m.mu.Lock()
	g := m.graph
	m.mu.Unlock()
	src := g.NodeIndex(srcName)
	if src < 0 {
		return nil, fmt.Errorf("cm: unknown endpoint %q", srcName)
	}
	dsts := make([]int, len(dstNames))
	for i, name := range dstNames {
		if dsts[i] = g.NodeIndex(name); dsts[i] < 0 {
			return nil, fmt.Errorf("cm: unknown endpoint %q", name)
		}
	}
	return m.cache.OptimizeMultiTiered(g, p, src, dsts, maxTier)
}

// NodeNames returns the measured hosts in graph order — the valid
// SourceNode/ClientNode values a session request may name.
func (m *Manager) NodeNames() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, len(m.nodes))
	for i, nd := range m.nodes {
		out[i] = nd.Name
	}
	return out
}

// PredictPlacement evaluates an installed placement under the *current*
// graph snapshot — the monitor half of the loop. A placement whose
// evaluation has drifted above its VRT's at-install prediction is the
// signal Adapters watch for.
func (m *Manager) PredictPlacement(p *pipeline.Pipeline, srcName string, placement []string) (float64, error) {
	m.mu.Lock()
	g := m.graph
	m.mu.Unlock()
	return pipeline.EvaluatePlacement(g, p, srcName, placement)
}

// noteAdaptation counts an Adapter trigger.
func (m *Manager) noteAdaptation() {
	m.mu.Lock()
	m.adaptations++
	m.mu.Unlock()
}

// Start launches the background Prober: one ProbeTick per ProbeInterval on
// the configured Clock (wall by default), until Stop. It is a no-op when
// ProbeInterval <= 0 or a prober is already running.
func (m *Manager) Start() {
	m.mu.Lock()
	if m.cfg.ProbeInterval <= 0 || m.proberStop != nil {
		m.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	m.proberStop, m.proberDone = stop, done
	interval := m.cfg.ProbeInterval
	m.mu.Unlock()

	clk := m.cfg.Clock
	go func() {
		defer close(done)
		// A timer re-armed after each tick, not a ticker: the re-arm is the
		// "work finished" edge the virtual clock's deterministic rendezvous
		// needs (see the clock package contract).
		timer := clk.NewTimer(interval)
		defer timer.Stop()
		for {
			select {
			case <-stop:
				return
			case <-timer.C():
				m.ProbeTick()
				timer.Reset(interval)
			}
		}
	}()
}

// Stop halts the background Prober and waits for it to exit.
func (m *Manager) Stop() {
	m.mu.Lock()
	stop, done := m.proberStop, m.proberDone
	m.proberStop, m.proberDone = nil, nil
	m.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}
