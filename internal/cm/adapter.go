package cm

// Adapter is the monitor→adapt half of the control loop for one session:
// it watches observed (or freshly re-predicted) frame delays against the
// installed VRT's prediction and decides when the deviation is sustained
// enough to warrant re-optimization ("the mapping scheme is adaptively
// re-configured during runtime in response to drastic network or host
// condition changes", Section 5.3.2). One transient frame over budget —
// a cross-traffic burst, a jittered probe — is absorbed; DeviationWindow
// consecutive deviations trigger.
type Adapter struct {
	m      *Manager
	tol    float64
	window int

	streak   int
	triggers uint64
}

// NewAdapter builds an Adapter with the Manager's configured deviation
// tolerance and window.
func (m *Manager) NewAdapter() *Adapter {
	return m.NewAdapterTuned(m.cfg.DeviationTolerance, m.cfg.DeviationWindow)
}

// NewAdapterTuned overrides the deviation parameters for one session
// (tol <= 0 and window <= 0 fall back to the Manager's configuration).
func (m *Manager) NewAdapterTuned(tol float64, window int) *Adapter {
	if tol <= 0 {
		tol = m.cfg.DeviationTolerance
	}
	if window <= 0 {
		window = m.cfg.DeviationWindow
	}
	return &Adapter{m: m, tol: tol, window: window}
}

// Observe feeds one frame's delay pair and reports whether the session
// should re-consult the optimizer now. predicted <= 0 (no installed VRT)
// never triggers.
func (a *Adapter) Observe(observed, predicted float64) bool {
	if predicted <= 0 || observed <= predicted*(1+a.tol) {
		a.streak = 0
		return false
	}
	a.streak++
	if a.streak < a.window {
		return false
	}
	a.streak = 0
	a.triggers++
	if a.m != nil {
		a.m.noteAdaptation()
	}
	return true
}

// Reset clears the deviation streak — call after installing a new VRT so
// the fresh mapping starts with a clean slate.
func (a *Adapter) Reset() { a.streak = 0 }

// Triggers reports how many times this Adapter fired.
func (a *Adapter) Triggers() uint64 { return a.triggers }
