package cm

import (
	"testing"
	"time"

	"ricsa/internal/clock"
	"ricsa/internal/netsim"
	"ricsa/internal/pipeline"
)

// quietTestbed is the live-service network shape: no loss, mild cross
// traffic, deterministic for a given seed.
func quietTestbed(seed int64) *netsim.Network {
	tb := netsim.DefaultTestbed()
	tb.Loss = 0
	tb.CrossMean = 0.9
	return netsim.Testbed(seed, tb)
}

func testConfig() Config {
	return Config{
		ProbeSizes:   []int{256 << 10, 1 << 20},
		ProbeRepeats: 1,
	}
}

func testPipeline() *pipeline.Pipeline {
	return &pipeline.Pipeline{
		Name:        "t",
		SourceBytes: 4 << 20,
		Modules: []pipeline.Module{
			{Name: "Filter", RefTime: 0.05, OutBytes: 4 << 20, Parallelizable: true},
			{Name: "Extract", RefTime: 0.3, OutBytes: 1 << 20, Parallelizable: true},
			{Name: "Render", RefTime: 0.1, OutBytes: 1 << 20, NeedsGPU: true},
			{Name: "Deliver", RefTime: 0.01, OutBytes: 1 << 20},
		},
	}
}

func TestNewMeasuresEveryEdge(t *testing.T) {
	net := quietTestbed(1)
	m := New(net, testConfig())
	g := m.Graph()
	if g == nil || g.Rev == 0 {
		t.Fatal("no stamped graph after construction")
	}
	if len(g.Nodes) != 6 {
		t.Fatalf("%d nodes, want 6", len(g.Nodes))
	}
	want := 2 * len(net.Links())
	if g.EdgeCount() != want {
		t.Fatalf("edge count %d, want %d", g.EdgeCount(), want)
	}
	for key, est := range m.Estimates() {
		if est.EPB <= 0 {
			t.Fatalf("edge %s has non-positive EPB %v", key, est.EPB)
		}
	}
	if m.ProbeEpoch() != 1 {
		t.Fatalf("epoch %d after initial sweep, want 1", m.ProbeEpoch())
	}
}

// TestAdoptSameConditionsKeepsRev is the tolerance gate's core promise: a
// fresh emulation of identical conditions (same seed, same config) measures
// the same, so the graph keeps its Rev and cached mappings keep hitting.
func TestAdoptSameConditionsKeepsRev(t *testing.T) {
	m := New(quietTestbed(42), testConfig())
	rev := m.Graph().Rev

	if _, err := m.Optimize(testPipeline(), netsim.GaTech, netsim.ORNL); err != nil {
		t.Fatal(err)
	}
	missesBefore := m.CacheStats().Misses

	if err := m.AdoptNetwork(quietTestbed(42)); err != nil {
		t.Fatal(err)
	}
	if got := m.Graph().Rev; got != rev {
		t.Fatalf("no-op remeasure re-stamped the graph: rev %d -> %d", rev, got)
	}
	if _, err := m.Optimize(testPipeline(), netsim.GaTech, netsim.ORNL); err != nil {
		t.Fatal(err)
	}
	if got := m.CacheStats().Misses; got != missesBefore {
		t.Fatalf("no-op remeasure caused %d new cache misses", got-missesBefore)
	}
	if m.Restamps() != 0 {
		t.Fatalf("restamps %d after no-op remeasure, want 0", m.Restamps())
	}
}

// TestAdoptDoesNotMutateHeldSnapshots pins the immutability contract:
// published graphs alias the Manager's node inventory, so rebinding to a
// new network must not write through a snapshot a concurrent optimizer is
// reading. (Run under -race this doubles as a data-race regression test.)
func TestAdoptDoesNotMutateHeldSnapshots(t *testing.T) {
	m := New(quietTestbed(42), testConfig())
	g := m.Graph()
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := range g.Nodes {
				_ = g.Nodes[i].Power
			}
			_, _ = m.Optimize(testPipeline(), netsim.GaTech, netsim.ORNL)
		}
	}()
	for i := 0; i < 5; i++ {
		if err := m.AdoptNetwork(quietTestbed(int64(43 + i))); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-done
	if len(g.Nodes) != 6 {
		t.Fatalf("held snapshot changed shape: %d nodes", len(g.Nodes))
	}
}

func TestAdoptRejectsForeignTopology(t *testing.T) {
	m := New(quietTestbed(1), testConfig())
	n := netsim.New(1)
	a := n.AddNode("a", 1)
	b := n.AddNode("b", 1)
	n.Connect(a, b, netsim.LinkConfig{Bandwidth: netsim.MB, Delay: time.Millisecond})
	if err := m.AdoptNetwork(n); err == nil {
		t.Fatal("foreign topology adopted")
	}
}

// TestProbeTickDetectsDegradation drives the Prober round-robin until it
// re-probes a collapsed link, and checks the graph is re-stamped and the
// optimizer avoids the dead edge.
func TestProbeTickDetectsDegradation(t *testing.T) {
	m := New(quietTestbed(7), testConfig())
	p := testPipeline()
	vrt, err := m.Optimize(p, netsim.GaTech, netsim.ORNL)
	if err != nil {
		t.Fatal(err)
	}
	onPath := func(v *pipeline.VRT, node string) bool {
		for _, n := range v.Path() {
			if n == node {
				return true
			}
		}
		return false
	}
	if !onPath(vrt, netsim.UT) {
		t.Fatalf("fixture: expected the fast UT path, got %v", vrt.Path())
	}

	l := m.Network().FindLink(netsim.GaTech, netsim.UT)
	l.AB.SetBandwidth(l.AB.Config().Bandwidth * 0.02)
	l.BA.SetBandwidth(l.BA.Config().Bandwidth * 0.02)

	rev := m.Graph().Rev
	restamped := false
	// One full round-robin pass over all edges guarantees the degraded link
	// is re-probed.
	for i := 0; i < len(m.Estimates()); i++ {
		if m.ProbeTick() {
			restamped = true
		}
	}
	if !restamped {
		t.Fatal("collapsed link never re-stamped the graph")
	}
	if m.Graph().Rev == rev {
		t.Fatal("graph rev unchanged after degradation")
	}
	vrt2, err := m.Optimize(p, netsim.GaTech, netsim.ORNL)
	if err != nil {
		t.Fatal(err)
	}
	if onPath(vrt2, netsim.UT) && vrt2.Delay >= vrt.Delay*2 {
		t.Fatalf("optimizer kept the collapsed path: %v (%.2fs)", vrt2.Path(), vrt2.Delay)
	}
}

func TestProbeTickRoundRobinCoversEdges(t *testing.T) {
	m := New(quietTestbed(3), Config{ProbeSizes: []int{256 << 10, 1 << 20}, ProbeLinksPerTick: 3})
	nEdges := len(m.Estimates())
	ticks := (nEdges + 2) / 3
	for i := 0; i < ticks; i++ {
		m.ProbeTick()
	}
	st := m.Status()
	for _, e := range st.Edges {
		if e.ProbeEpoch <= 1 {
			t.Fatalf("edge %s->%s never re-probed (epoch %d)", e.From, e.To, e.ProbeEpoch)
		}
		if e.StaleTicks > uint64(ticks) {
			t.Fatalf("edge %s->%s staleness %d exceeds tick count %d", e.From, e.To, e.StaleTicks, ticks)
		}
	}
}

// TestProbeTickMarksDarkLinkDead pins the probe-budget path: probing a dark
// link times out instead of hanging, and the edge's estimate adopts the
// collapse bound raw so the optimizer avoids it immediately.
func TestProbeTickMarksDarkLinkDead(t *testing.T) {
	cfg := testConfig()
	cfg.ProbeBudget = time.Second
	m := New(quietTestbed(7), cfg)
	l := m.Network().FindLink(netsim.GaTech, netsim.UT)
	l.SetDown(true)

	restamped := false
	for i := 0; i < len(m.Estimates()); i++ {
		if m.ProbeTick() {
			restamped = true
		}
	}
	if !restamped {
		t.Fatal("dark link never re-stamped the graph")
	}
	est := m.Estimates()[netsim.GaTech+"->"+netsim.UT]
	// 1 MiB probe over the 1s budget bounds the estimate at ~1 MiB/s —
	// far below the healthy 12 MB/s.
	if est.EPB > float64(2<<20) {
		t.Fatalf("dark edge still estimated at %.0f B/s", est.EPB)
	}
	vrt, err := m.Optimize(testPipeline(), netsim.GaTech, netsim.ORNL)
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range vrt.Path() {
		if node == netsim.UT {
			t.Fatalf("optimizer still routes via the dark link: %v", vrt.Path())
		}
	}
}

func TestAdapterWindow(t *testing.T) {
	m := New(quietTestbed(1), testConfig())
	a := m.NewAdapterTuned(0.5, 2)

	if a.Observe(1.0, 0) {
		t.Fatal("triggered with no installed VRT")
	}
	if a.Observe(1.4, 1.0) {
		t.Fatal("triggered within tolerance")
	}
	if a.Observe(2.0, 1.0) {
		t.Fatal("triggered on the first deviating frame (window 2)")
	}
	if !a.Observe(2.0, 1.0) {
		t.Fatal("no trigger after two consecutive deviations")
	}
	// Streak resets after a trigger and after a healthy frame.
	if a.Observe(2.0, 1.0) {
		t.Fatal("streak not reset after trigger")
	}
	a.Observe(1.0, 1.0)
	if a.Observe(2.0, 1.0) {
		t.Fatal("healthy frame did not reset the streak")
	}
	if a.Triggers() != 1 {
		t.Fatalf("triggers %d, want 1", a.Triggers())
	}
	if m.Adaptations() != 1 {
		t.Fatalf("manager adaptations %d, want 1", m.Adaptations())
	}
}

// TestBackgroundProberTicks drives the background Prober on a virtual
// clock: four interval boundaries yield exactly four ticks, with no sleeps
// and no deadline polling.
func TestBackgroundProberTicks(t *testing.T) {
	cfg := testConfig()
	cfg.ProbeInterval = 100 * time.Millisecond
	clk := clock.NewVirtual(time.Unix(0, 0))
	cfg.Clock = clk
	m := New(quietTestbed(5), cfg)
	m.Start()
	defer m.Stop()
	clk.AwaitArmed(1) // the prober's timer is parked
	clk.Advance(450 * time.Millisecond)
	if got := m.ProbeEpoch(); got != 5 {
		t.Fatalf("epoch %d after initial sweep + 4 ticks, want 5", got)
	}
	m.Stop() // idempotent
	if clk.Armed() != 0 {
		t.Fatalf("%d timers still armed after Stop", clk.Armed())
	}
}

func TestStatusShape(t *testing.T) {
	m := New(quietTestbed(9), testConfig())
	st := m.Status()
	if st.Nodes != 6 || len(st.Edges) == 0 {
		t.Fatalf("status %+v lacks topology", st)
	}
	if st.GraphRev == 0 || st.ProbeEpoch != 1 {
		t.Fatalf("status rev/epoch %d/%d", st.GraphRev, st.ProbeEpoch)
	}
	if st.Tolerance <= 0 {
		t.Fatal("status missing tolerance")
	}
}

func TestPredictPlacementTracksGraph(t *testing.T) {
	m := New(quietTestbed(11), testConfig())
	p := testPipeline()
	vrt, err := m.Optimize(p, netsim.GaTech, netsim.ORNL)
	if err != nil {
		t.Fatal(err)
	}
	placement := flatten(vrt)
	pred, err := m.PredictPlacement(p, netsim.GaTech, placement)
	if err != nil {
		t.Fatal(err)
	}
	if pred <= 0 {
		t.Fatalf("prediction %v", pred)
	}
	// Degrade every data link the placement uses and re-probe: the same
	// placement must now predict slower.
	l := m.Network().FindLink(netsim.GaTech, netsim.UT)
	l.AB.SetBandwidth(l.AB.Config().Bandwidth * 0.02)
	l.BA.SetBandwidth(l.BA.Config().Bandwidth * 0.02)
	m.MeasureAll()
	pred2, err := m.PredictPlacement(p, netsim.GaTech, placement)
	if err != nil {
		t.Fatal(err)
	}
	if pred2 <= pred {
		t.Fatalf("degraded prediction %v not above healthy %v", pred2, pred)
	}
}

// flatten mirrors steering.PlacementFromVRT without importing steering
// (cm must stay below it in the dependency order).
func flatten(vrt *pipeline.VRT) []string {
	var out []string
	for gi, grp := range vrt.Groups {
		mods := grp.Modules
		if gi == 0 && len(mods) > 0 && mods[0] == "Source" {
			mods = mods[1:]
		}
		for range mods {
			out = append(out, grp.Node)
		}
	}
	return out
}
