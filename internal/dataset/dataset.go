// Package dataset generates the synthetic stand-ins for the paper's three
// experimental datasets — Jet (16 MB), Rage (64 MB), and Visible Woman
// (108 MB, pre-downsampled) — plus scaled-down variants for fast tests.
//
// The generators are deterministic analytic fields chosen to mimic the
// isosurface structure of the originals (a turbulent jet plume, a blast
// wave, and nested anatomical density shells). What the experiments consume
// from a dataset is its byte size, its block occupancy statistics, and its
// extracted triangle counts; the analytic fields exercise all three.
package dataset

import (
	"fmt"
	"math"

	"ricsa/internal/grid"
)

// Spec names a generated dataset.
type Spec struct {
	Name       string
	NX, NY, NZ int
	Kind       Kind
}

// Kind selects the generator family.
type Kind int

// Generator families for the three paper datasets.
const (
	KindJet Kind = iota
	KindRage
	KindVisWoman
)

// SizeBytes returns the raw float32 payload size.
func (s Spec) SizeBytes() int { return 4 * s.NX * s.NY * s.NZ }

// The paper's three datasets with size-exact dimensions:
// Jet 256x128x128x4B = 16 MiB, Rage 256x256x256x4B = 64 MiB,
// VisWoman 432x256x256x4B = 108 MiB.
var (
	JetSpec      = Spec{Name: "Jet", NX: 256, NY: 128, NZ: 128, Kind: KindJet}
	RageSpec     = Spec{Name: "Rage", NX: 256, NY: 256, NZ: 256, Kind: KindRage}
	VisWomanSpec = Spec{Name: "Viswoman", NX: 432, NY: 256, NZ: 256, Kind: KindVisWoman}
)

// PaperDatasets lists the three Fig. 9 datasets in presentation order.
func PaperDatasets() []Spec { return []Spec{JetSpec, RageSpec, VisWomanSpec} }

// Scaled returns a smaller dataset with the same generator and aspect
// ratio, dividing each dimension by div. Useful for fast tests that still
// exercise realistic field structure.
func (s Spec) Scaled(div int) Spec {
	if div < 1 {
		div = 1
	}
	out := s
	out.Name = fmt.Sprintf("%s/%d", s.Name, div)
	out.NX = maxInt(8, s.NX/div)
	out.NY = maxInt(8, s.NY/div)
	out.NZ = maxInt(8, s.NZ/div)
	return out
}

// Generate materializes the scalar field for the spec.
func Generate(s Spec) *grid.ScalarField {
	f := grid.NewScalarField(s.NX, s.NY, s.NZ)
	switch s.Kind {
	case KindJet:
		fillJet(f)
	case KindRage:
		fillRage(f)
	case KindVisWoman:
		fillVisWoman(f)
	default:
		panic(fmt.Sprintf("dataset: unknown kind %d", s.Kind))
	}
	return f
}

// DefaultIsovalue returns an isovalue that cuts an interesting surface for
// the generator family (roughly the paper's "user-selected isovalue").
func DefaultIsovalue(k Kind) float32 {
	switch k {
	case KindJet:
		return 0.5
	case KindRage:
		return 0.5
	default:
		return 0.45
	}
}

// fillJet models a turbulent jet plume entering along +x: a Gaussian core
// whose radius grows downstream, perturbed by helical modes.
func fillJet(f *grid.ScalarField) {
	cy, cz := float64(f.NY-1)/2, float64(f.NZ-1)/2
	f.Fill(func(x, y, z int) float32 {
		t := float64(x) / float64(f.NX-1) // downstream coordinate
		dy, dz := float64(y)-cy, float64(z)-cz
		r := math.Hypot(dy, dz)
		// Plume radius grows downstream; helical wobble displaces the core.
		wobble := 3.0 * t * math.Sin(6*math.Pi*t)
		phase := math.Atan2(dz, dy)
		rEff := r - wobble*math.Cos(phase+4*math.Pi*t)
		width := 4.0 + 18.0*t
		core := math.Exp(-rEff * rEff / (2 * width * width))
		// Downstream decay plus shear-layer ripples.
		ripple := 0.12 * math.Sin(10*math.Pi*t) * math.Exp(-r/width)
		return float32((1.2 - 0.5*t) * core * (1 + ripple))
	})
}

// fillRage models a Sedov-like blast: concentric density shells around the
// domain center with a sharp front and rarefied interior, plus angular
// corrugation of the front.
func fillRage(f *grid.ScalarField) {
	cx := float64(f.NX-1) / 2
	cy := float64(f.NY-1) / 2
	cz := float64(f.NZ-1) / 2
	rFront := 0.72 * math.Min(cx, math.Min(cy, cz))
	f.Fill(func(x, y, z int) float32 {
		dx, dy, dz := float64(x)-cx, float64(y)-cy, float64(z)-cz
		r := math.Sqrt(dx*dx + dy*dy + dz*dz)
		theta := math.Atan2(dy, dx)
		phi := math.Atan2(dz, math.Hypot(dx, dy))
		front := rFront * (1 + 0.06*math.Sin(5*theta)*math.Cos(4*phi))
		// Sharp shell at the front, low density inside, ambient outside.
		d := (r - front) / (0.04 * rFront)
		shell := math.Exp(-d * d)
		interior := 0.15 * (1 - math.Tanh(d))
		return float32(shell + interior*0.5*(r/front))
	})
}

// fillVisWoman models nested anatomical density shells (skin, soft tissue,
// bone) in a body-like ellipsoid along the long axis.
func fillVisWoman(f *grid.ScalarField) {
	cx := float64(f.NX-1) / 2
	cy := float64(f.NY-1) / 2
	cz := float64(f.NZ-1) / 2
	f.Fill(func(x, y, z int) float32 {
		// Normalized ellipsoidal radius: the body tapers toward the ends of
		// the long (x) axis.
		tx := (float64(x) - cx) / cx
		taper := 1 - 0.35*tx*tx
		dy := (float64(y) - cy) / (cy * taper)
		dz := (float64(z) - cz) / (cz * 0.8 * taper)
		r := math.Sqrt(tx*tx*0.25 + dy*dy + dz*dz)
		// Skin at r~0.8, tissue inside, a bone column near the axis.
		skin := math.Exp(-((r - 0.8) * (r - 0.8)) / 0.003)
		tissue := 0.35 * (1 - math.Tanh((r-0.75)/0.05))
		bone := 0.0
		rb := math.Hypot(dy, dz+0.25)
		if rb < 0.18 {
			bone = 0.9 * (1 + 0.2*math.Sin(14*math.Pi*tx)) * (1 - rb/0.18)
		}
		return float32(0.5*skin + tissue + bone)
	})
}

// VelocityFromScalar derives a divergence-style vector field from a scalar
// dataset (its negative gradient), giving the streamline module a flow with
// matching structure when the paper's techniques are swept over a dataset.
func VelocityFromScalar(f *grid.ScalarField) *grid.VectorField {
	vf := grid.NewVectorField(f.NX, f.NY, f.NZ)
	for z := 0; z < f.NZ; z++ {
		for y := 0; y < f.NY; y++ {
			for x := 0; x < f.NX; x++ {
				gx, gy, gz := f.Gradient(x, y, z)
				vf.Set(x, y, z, float32(-gx), float32(-gy), float32(-gz))
			}
		}
	}
	return vf
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
