package dataset

import (
	"testing"

	"ricsa/internal/grid"
	"ricsa/internal/viz/marchingcubes"
)

func TestPaperDatasetSizesExact(t *testing.T) {
	want := map[string]int{
		"Jet":      16 << 20,
		"Rage":     64 << 20,
		"Viswoman": 108 << 20,
	}
	for _, s := range PaperDatasets() {
		if got := s.SizeBytes(); got != want[s.Name] {
			t.Fatalf("%s: %d bytes, want %d", s.Name, got, want[s.Name])
		}
	}
}

func TestScaledPreservesMinimumDims(t *testing.T) {
	s := JetSpec.Scaled(1000)
	if s.NX < 8 || s.NY < 8 || s.NZ < 8 {
		t.Fatalf("scaled dims too small: %dx%dx%d", s.NX, s.NY, s.NZ)
	}
	if JetSpec.Scaled(0) != JetSpec.Scaled(1) {
		t.Fatal("div < 1 should behave as 1")
	}
}

func TestGeneratorsProduceIsosurfaces(t *testing.T) {
	for _, s := range []Spec{JetSpec.Scaled(8), RageSpec.Scaled(8), VisWomanSpec.Scaled(8)} {
		f := Generate(s)
		iso := DefaultIsovalue(s.Kind)
		mn, mx := f.MinMax()
		if !(mn < iso && iso < mx) {
			t.Fatalf("%s: isovalue %v outside range [%v, %v]", s.Name, iso, mn, mx)
		}
		m := marchingcubes.Extract(f, iso)
		if m.TriangleCount() == 0 {
			t.Fatalf("%s: default isovalue extracts nothing", s.Name)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Generate(RageSpec.Scaled(16))
	b := Generate(RageSpec.Scaled(16))
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			t.Fatal("generator is not deterministic")
		}
	}
}

func TestGeneratorsAreSparse(t *testing.T) {
	// The paper's octree culling only pays off when many blocks miss the
	// isosurface; our analogues must share that sparsity.
	for _, s := range []Spec{JetSpec.Scaled(8), RageSpec.Scaled(8)} {
		f := Generate(s)
		blocks := grid.Decompose(f, 8)
		active := grid.ActiveBlocks(blocks, DefaultIsovalue(s.Kind))
		frac := float64(len(active)) / float64(len(blocks))
		if frac > 0.8 {
			t.Fatalf("%s: %.0f%% of blocks active; generator lacks sparsity", s.Name, frac*100)
		}
		if frac == 0 {
			t.Fatalf("%s: no active blocks", s.Name)
		}
	}
}

func TestVelocityFromScalarNonTrivial(t *testing.T) {
	f := Generate(JetSpec.Scaled(16))
	vf := VelocityFromScalar(f)
	if vf.SizeBytes() != 3*f.SizeBytes() {
		t.Fatalf("vector field size %d, want %d", vf.SizeBytes(), 3*f.SizeBytes())
	}
	var nonzero bool
	for i := range vf.U {
		if vf.U[i] != 0 || vf.V[i] != 0 || vf.W[i] != 0 {
			nonzero = true
			break
		}
	}
	if !nonzero {
		t.Fatal("velocity field is identically zero")
	}
}
