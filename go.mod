module ricsa

go 1.22
