// Quickstart: build an emulated three-host network, describe a
// visualization pipeline, let the optimizer partition and map it, and
// execute one frame — the minimal end-to-end use of the RICSA library.
package main

import (
	"fmt"
	"log"
	"time"

	"ricsa/internal/netsim"
	"ricsa/internal/pipeline"
	"ricsa/internal/steering"
)

func main() {
	// 1. An emulated WAN: data source, a parallel cluster, and the client.
	net := netsim.New(42)
	ds := net.AddNode("datasource", 1.0)
	cluster := net.AddNode("cluster", 1.3)
	cluster.Workers = 4
	cluster.HasGPU = true
	client := net.AddNode("client", 1.0)
	client.HasGPU = true

	net.Connect(ds, cluster, netsim.LinkConfig{Bandwidth: 12 * netsim.MB, Delay: 7 * time.Millisecond})
	net.Connect(cluster, client, netsim.LinkConfig{Bandwidth: 10 * netsim.MB, Delay: 3 * time.Millisecond})
	net.Connect(ds, client, netsim.LinkConfig{Bandwidth: 2 * netsim.MB, Delay: 10 * time.Millisecond})

	// 2. Measure the network (active probing + linear regression -> EPB).
	d := steering.NewDeployment(net)
	d.Measure(nil, 1)
	fmt.Println("Measured effective path bandwidths:")
	for key, est := range d.Estimates {
		fmt.Printf("  %-24s %6.1f MB/s (min delay %v)\n", key, est.EPB/netsim.MB, est.MinDelay.Round(time.Millisecond))
	}

	// 3. A four-module pipeline for a 64 MB dataset.
	p := &pipeline.Pipeline{
		Name:        "demo",
		SourceBytes: 64 * netsim.MB,
		Modules: []pipeline.Module{
			{Name: "Filter", RefTime: 0.8, OutBytes: 64 * netsim.MB, Parallelizable: true},
			{Name: "Extract", RefTime: 9.5, OutBytes: 20 * netsim.MB, Parallelizable: true},
			{Name: "Render", RefTime: 1.2, OutBytes: 1 * netsim.MB, NeedsGPU: true},
			{Name: "Deliver", RefTime: 0.005, OutBytes: 1 * netsim.MB},
		},
	}

	// 4. Optimize: the CM node's dynamic program (Eqs. 9-10).
	vrt, err := d.Optimize(p, "datasource", "client")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nVisualization routing table:")
	for _, g := range vrt.Groups {
		fmt.Printf("  %-12s runs %v\n", g.Node, g.Modules)
	}
	fmt.Printf("Predicted end-to-end delay: %.2f s\n", vrt.Delay)

	// 5. Execute the frame on the emulated network.
	res, err := d.RunFrameSync(p, "datasource", steering.PlacementFromVRT(vrt))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Executed frame: %.2f s along %v\n", res.Elapsed.Seconds(), res.Path)

	// 6. Compare with the naive client-server mapping.
	naive := []string{"datasource", "datasource", "client", "client"}
	res2, err := d.RunFrameSync(p, "datasource", naive)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Client-server mapping:  %.2f s (%.2fx slower)\n",
		res2.Elapsed.Seconds(), res2.Elapsed.Seconds()/res.Elapsed.Seconds())
}
