// Webdemo launches the full live stack — steerable bow-shock simulation,
// visualization, and the Ajax web front end — then drives it with an HTTP
// client exactly as a browser would: long-polling frames, posting a
// steering command, and confirming the animation responds. Pass -serve to
// keep the server running for a real browser afterwards.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"time"

	"ricsa/internal/steering"
	"ricsa/internal/webui"
)

func main() {
	serve := flag.String("serve", "", "after the demo, keep serving at this address (e.g. :8080)")
	flag.Parse()

	req := steering.DefaultRequest()
	req.Simulator = "bowshock"
	req.Variable = "pressure"
	req.Method = "raycast"
	req.NX, req.NY, req.NZ = 96, 48, 24
	req.StepsPerFrame = 2

	src, err := webui.NewLiveSource(req)
	if err != nil {
		log.Fatal(err)
	}
	src.FramePeriod = 100 * time.Millisecond
	src.Width, src.Height = 256, 256
	src.Start()
	defer src.Stop()

	ts := httptest.NewServer(webui.NewServer(src).Handler())
	defer ts.Close()
	fmt.Println("Ajax front end serving at", ts.URL)

	// Browser behaviour 1: long-poll frames, updating only the image.
	seq := uint64(0)
	for i := 0; i < 5; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/api/frame?since=%d", ts.URL, seq))
		if err != nil {
			log.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		fmt.Sscan(resp.Header.Get("X-Frame-Seq"), &seq)
		fmt.Printf("frame %d: %d bytes of PNG\n", seq, len(body))
	}

	// Browser behaviour 2: steer the wind asynchronously.
	payload, _ := json.Marshal(map[string]float64{"wind_velocity": 5})
	resp, err := http.Post(ts.URL+"/api/steer", "application/json", bytes.NewReader(payload))
	if err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Println("steered: wind velocity 3 -> 5")

	// Browser behaviour 3: the status sidebar.
	resp, err = http.Get(ts.URL + "/api/status")
	if err != nil {
		log.Fatal(err)
	}
	var status map[string]any
	json.NewDecoder(resp.Body).Decode(&status)
	resp.Body.Close()
	fmt.Printf("status: cycle=%v sim_time=%.4v frames=%v\n",
		status["cycle"], status["sim_time"], status["frame_seq"])

	if *serve != "" {
		fmt.Printf("serving for real browsers at http://%s/ (Ctrl-C to stop)\n", *serve)
		log.Fatal(http.ListenAndServe(*serve, webui.NewServer(src).Handler()))
	}
}
