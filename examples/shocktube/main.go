// Shocktube demonstrates the universal steering framework of Section 5.2:
// a Sod shock-tube simulation instrumented with the six RICSA API calls
// (Fig. 7) runs as a TCP server; the visualization side connects, receives
// dataset frames, steers the driver pressure mid-run, and writes before/
// after isosurface renderings to PNG files.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ricsa/internal/simengine"
	"ricsa/internal/steering"
)

func main() {
	frames := flag.Int("frames", 12, "dataset frames to monitor")
	steerAt := flag.Int("steer-at", 4, "frame index at which to steer the left pressure")
	outDir := flag.String("out", ".", "directory for rendered PNGs")
	flag.Parse()

	// --- Simulation side: the Fig. 7 instrumented main loop. ---
	srv, err := steering.StartupSimulationServer("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	go simulationProgram(srv, *frames)

	// --- Visualization side. ---
	cli, err := steering.DialSimulation(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	req := steering.DefaultRequest()
	req.NX, req.NY, req.NZ = 96, 32, 32
	if err := cli.SendRequest(req); err != nil {
		log.Fatal(err)
	}

	for i := 0; i < *frames; i++ {
		field, err := cli.ReceiveData()
		if err != nil {
			log.Fatalf("receiving frame %d: %v", i, err)
		}
		fmt.Printf("frame %2d: dataset %dx%dx%d (%d KB)\n",
			i, field.NX, field.NY, field.NZ, field.SizeBytes()/1024)

		if i == *steerAt {
			img, err := steering.RenderDataset(field, req, 384, 384)
			if err != nil {
				log.Fatal(err)
			}
			save(img.PNG())(fmt.Sprintf("%s/shocktube_before.png", *outDir))

			p := simengine.DefaultSodParams()
			p.LeftPressure = 10
			p.LeftDensity = 2
			if err := cli.SendParams(p); err != nil {
				log.Fatal(err)
			}
			fmt.Println("        >> steered: left pressure 1.0 -> 10.0")
		}
		if i == *frames-1 {
			img, err := steering.RenderDataset(field, req, 384, 384)
			if err != nil {
				log.Fatal(err)
			}
			save(img.PNG())(fmt.Sprintf("%s/shocktube_after.png", *outDir))
		}
	}
	cli.SendStop()
	fmt.Println("wrote shocktube_before.png and shocktube_after.png")
}

// simulationProgram is the instrumented solver: compare with the VH1
// pseudo-code in Fig. 7 of the paper.
func simulationProgram(srv *steering.SimServer, frames int) {
	if err := srv.WaitAcceptConnection(); err != nil {
		log.Fatal(err)
	}
	// do ReceiveHandleMessage while message not SimulationReq.
	var req steering.Request
	for {
		m, err := srv.ReceiveHandleMessage(true)
		if err != nil {
			log.Fatal(err)
		}
		if m.Type == steering.MsgSimulationReq {
			req = m.Request
			break
		}
	}
	sim := simengine.NewSod(req.NX, req.NY, req.NZ, simengine.DefaultSodParams())

	// Main computational loop: sweeps, push data, poll for steering.
	for cycle := 0; cycle < frames; cycle++ {
		for s := 0; s < req.StepsPerFrame; s++ {
			sim.Step() // sweepx, sweepy, sweepz
		}
		if err := srv.PushDataToVizNode(sim.Density()); err != nil {
			return
		}
		if m, _ := srv.ReceiveHandleMessage(false); m != nil {
			switch m.Type {
			case steering.MsgNewSimulationParameters:
				sim.SetParams(m.Params) // RICSA_UpdateSimulationParameters
			case steering.MsgStopSimulation:
				return
			}
		}
	}
}

func save(data []byte, err error) func(path string) {
	return func(path string) {
		if err != nil {
			log.Fatal(err)
		}
		if werr := os.WriteFile(path, data, 0o644); werr != nil {
			log.Fatal(werr)
		}
	}
}
