// Remoteviz reproduces the paper's Fig. 9 experiment interactively: remote
// visualization of the three archival datasets (Jet, Rage, Visible Woman)
// over the emulated six-site testbed, comparing the DP-optimized loop
// against the five manual alternatives.
//
// Run with -scale 4 for a quick pass or -scale 1 for the full-size
// datasets (the defaults match EXPERIMENTS.md).
package main

import (
	"flag"
	"fmt"
	"log"

	"ricsa/internal/experiments"
)

func main() {
	scale := flag.Int("scale", 1, "dataset analysis scale divisor")
	trials := flag.Int("trials", 2, "trials per loop")
	flag.Parse()

	opt := experiments.DefaultOptions()
	opt.AnalysisScale = *scale
	opt.Trials = *trials

	fmt.Println("Remote visualization over the six-site testbed (Fig. 9)")
	fmt.Println("--------------------------------------------------------")
	res, err := experiments.RunFig9(opt)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res {
		fmt.Printf("\n%s (%.0f MB) — optimal loop %v, %.2f s\n",
			r.Dataset, r.SizeMB, r.OptimalPath, r.Optimal)
		for _, l := range experiments.SortLoopsByDelay(r.Loops) {
			bar := ""
			for i := 0; i < int(l.Seconds/r.Optimal*8) && i < 60; i++ {
				bar += "#"
			}
			fmt.Printf("  %-44s %7.2f s %s\n", l.Name, l.Seconds, bar)
		}
		fmt.Printf("  speedup of optimal over best PC-PC loop: %.2fx\n", r.SpeedupVsPCPC)
	}
}
